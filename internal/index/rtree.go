// Package index provides spatial indexes over envelope-keyed items: an
// R-tree (STR bulk load plus dynamic quadratic-split insertion) and a
// uniform grid, both behind a common interface. The predicate-extraction
// spatial join uses them to enumerate candidate feature pairs before the
// exact DE-9IM test, exactly as a GIS would.
package index

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Item is an entry stored in a spatial index: an envelope plus an opaque
// identifier chosen by the caller (typically a feature index).
type Item struct {
	Env geom.Envelope
	ID  int
}

// SpatialIndex enumerates stored items by spatial predicate.
type SpatialIndex interface {
	// Insert adds an item.
	Insert(item Item)
	// Search appends to dst the IDs of all items whose envelope
	// intersects query, and returns the extended slice. Order is
	// unspecified.
	Search(query geom.Envelope, dst []int) []int
	// SearchDistance appends to dst the IDs of all items whose envelope
	// lies within distance d of query, and returns the extended slice.
	SearchDistance(query geom.Envelope, d float64, dst []int) []int
	// Len reports the number of stored items.
	Len() int
}

const (
	rtreeMaxEntries = 9
	rtreeMinEntries = 3
)

// RTree is an R-tree over envelope items. The zero value is an empty tree
// ready for Insert; NewRTreeBulk builds a packed tree with the
// sort-tile-recursive (STR) algorithm.
type RTree struct {
	root *rtreeNode
	size int
}

type rtreeNode struct {
	env      geom.Envelope
	leaf     bool
	items    []Item       // leaf payload
	children []*rtreeNode // internal payload
}

var _ SpatialIndex = (*RTree)(nil)

// NewRTreeBulk builds an STR-packed R-tree from the given items. The
// resulting tree is balanced and has near-minimal overlap, which makes it
// faster to query than one built by repeated insertion.
func NewRTreeBulk(items []Item) *RTree {
	t := &RTree{size: len(items)}
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(items)
	t.root = packUp(leaves)
	return t
}

// packLeaves tiles the items into leaf nodes using sort-tile-recursive.
func packLeaves(items []Item) []*rtreeNode {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Env.Center().X < sorted[j].Env.Center().X
	})
	n := len(sorted)
	leafCount := (n + rtreeMaxEntries - 1) / rtreeMaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := (n + sliceCount - 1) / sliceCount

	var leaves []*rtreeNode
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Env.Center().Y < slice[j].Env.Center().Y
		})
		for o := 0; o < len(slice); o += rtreeMaxEntries {
			oEnd := o + rtreeMaxEntries
			if oEnd > len(slice) {
				oEnd = len(slice)
			}
			leaf := &rtreeNode{leaf: true, items: append([]Item{}, slice[o:oEnd]...)}
			leaf.recomputeEnv()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packUp builds internal levels over the given nodes until one root
// remains.
func packUp(nodes []*rtreeNode) *rtreeNode {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			return nodes[i].env.Center().X < nodes[j].env.Center().X
		})
		var next []*rtreeNode
		for o := 0; o < len(nodes); o += rtreeMaxEntries {
			end := o + rtreeMaxEntries
			if end > len(nodes) {
				end = len(nodes)
			}
			parent := &rtreeNode{children: append([]*rtreeNode{}, nodes[o:end]...)}
			parent.recomputeEnv()
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

func (n *rtreeNode) recomputeEnv() {
	e := geom.EmptyEnvelope()
	if n.leaf {
		for _, it := range n.items {
			e = e.Union(it.Env)
		}
	} else {
		for _, c := range n.children {
			e = e.Union(c.env)
		}
	}
	n.env = e
}

// Len implements SpatialIndex.
func (t *RTree) Len() int { return t.size }

// Insert implements SpatialIndex using the classic choose-leaf descent
// with quadratic split on overflow.
func (t *RTree) Insert(item Item) {
	t.size++
	if t.root == nil {
		t.root = &rtreeNode{leaf: true, items: []Item{item}, env: item.Env}
		return
	}
	split := t.root.insert(item)
	if split != nil {
		newRoot := &rtreeNode{children: []*rtreeNode{t.root, split}}
		newRoot.recomputeEnv()
		t.root = newRoot
	}
}

// insert adds the item below n; if n overflows it splits and returns the
// new sibling, otherwise nil.
func (n *rtreeNode) insert(item Item) *rtreeNode {
	n.env = n.env.Union(item.Env)
	if n.leaf {
		n.items = append(n.items, item)
		if len(n.items) > rtreeMaxEntries {
			return n.splitLeaf()
		}
		return nil
	}
	best := n.chooseChild(item.Env)
	if split := best.insert(item); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > rtreeMaxEntries {
			return n.splitInternal()
		}
	}
	return nil
}

// chooseChild picks the child whose envelope needs the least enlargement,
// breaking ties by smaller area.
func (n *rtreeNode) chooseChild(e geom.Envelope) *rtreeNode {
	var best *rtreeNode
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for _, c := range n.children {
		enl := c.env.Union(e).Area() - c.env.Area()
		area := c.env.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// splitLeaf splits an overflowing leaf with quadratic seed picking.
func (n *rtreeNode) splitLeaf() *rtreeNode {
	envs := make([]geom.Envelope, len(n.items))
	for i, it := range n.items {
		envs[i] = it.Env
	}
	g1, g2 := quadraticSplit(envs)
	items := n.items
	n.items = pickItems(items, g1)
	sibling := &rtreeNode{leaf: true, items: pickItems(items, g2)}
	n.recomputeEnv()
	sibling.recomputeEnv()
	return sibling
}

// splitInternal splits an overflowing internal node.
func (n *rtreeNode) splitInternal() *rtreeNode {
	envs := make([]geom.Envelope, len(n.children))
	for i, c := range n.children {
		envs[i] = c.env
	}
	g1, g2 := quadraticSplit(envs)
	children := n.children
	n.children = pickNodes(children, g1)
	sibling := &rtreeNode{children: pickNodes(children, g2)}
	n.recomputeEnv()
	sibling.recomputeEnv()
	return sibling
}

func pickItems(items []Item, idx []int) []Item {
	out := make([]Item, len(idx))
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

func pickNodes(nodes []*rtreeNode, idx []int) []*rtreeNode {
	out := make([]*rtreeNode, len(idx))
	for i, j := range idx {
		out[i] = nodes[j]
	}
	return out
}

// quadraticSplit partitions envelope indices into two groups using
// Guttman's quadratic algorithm: seed with the pair wasting the most area,
// then assign each remaining entry to the group whose envelope grows
// least, forcing assignment when a group must absorb the rest to reach the
// minimum fill.
func quadraticSplit(envs []geom.Envelope) (g1, g2 []int) {
	// Pick seeds.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(envs); i++ {
		for j := i + 1; j < len(envs); j++ {
			waste := envs[i].Union(envs[j]).Area() - envs[i].Area() - envs[j].Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	e1, e2 := envs[s1], envs[s2]
	remaining := make([]int, 0, len(envs)-2)
	for i := range envs {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment if one group must take all the rest.
		if len(g1)+len(remaining) == rtreeMinEntries {
			g1 = append(g1, remaining...)
			break
		}
		if len(g2)+len(remaining) == rtreeMinEntries {
			g2 = append(g2, remaining...)
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff := 0, math.Inf(-1)
		for k, i := range remaining {
			d1 := e1.Union(envs[i]).Area() - e1.Area()
			d2 := e2.Union(envs[i]).Area() - e2.Area()
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, k
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		d1 := e1.Union(envs[i]).Area() - e1.Area()
		d2 := e2.Union(envs[i]).Area() - e2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, i)
			e1 = e1.Union(envs[i])
		} else {
			g2 = append(g2, i)
			e2 = e2.Union(envs[i])
		}
	}
	return g1, g2
}

// Search implements SpatialIndex.
func (t *RTree) Search(query geom.Envelope, dst []int) []int {
	if t.root == nil {
		return dst
	}
	return t.root.search(query, dst)
}

func (n *rtreeNode) search(query geom.Envelope, dst []int) []int {
	if !n.env.Intersects(query) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Env.Intersects(query) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = c.search(query, dst)
	}
	return dst
}

// SearchDistance implements SpatialIndex.
func (t *RTree) SearchDistance(query geom.Envelope, d float64, dst []int) []int {
	if t.root == nil {
		return dst
	}
	return t.root.searchDistance(query, d, dst)
}

func (n *rtreeNode) searchDistance(query geom.Envelope, d float64, dst []int) []int {
	if n.env.Distance(query) > d {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Env.Distance(query) <= d {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = c.searchDistance(query, d, dst)
	}
	return dst
}

// Height returns the number of levels in the tree (0 when empty); useful
// for balance assertions in tests.
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
