package index

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
)

// NearestNeighborer is implemented by indexes supporting k-nearest-
// neighbor queries by envelope distance.
type NearestNeighborer interface {
	// Nearest returns the IDs of the k items whose envelopes are closest
	// to the query envelope, ordered by ascending distance (ties by ID).
	// Fewer than k results are returned when the index is smaller.
	Nearest(query geom.Envelope, k int) []int
}

// Nearest implements NearestNeighborer with the classic best-first
// branch-and-bound traversal: a priority queue over nodes and items keyed
// by envelope distance guarantees items are emitted in distance order
// without visiting more of the tree than necessary.
func (t *RTree) Nearest(query geom.Envelope, k int) []int {
	if t.root == nil || k <= 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnEntry{dist: t.root.env.Distance(query), node: t.root})
	out := make([]int, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		if e.node == nil {
			out = append(out, e.id)
			continue
		}
		if e.node.leaf {
			for _, it := range e.node.items {
				heap.Push(pq, knnEntry{dist: it.Env.Distance(query), id: it.ID})
			}
			continue
		}
		for _, c := range e.node.children {
			heap.Push(pq, knnEntry{dist: c.env.Distance(query), node: c})
		}
	}
	return out
}

// knnEntry is a queue element: either a tree node to expand or a
// concrete item (node == nil).
type knnEntry struct {
	dist float64
	id   int
	node *rtreeNode
}

// knnQueue is a min-heap over knnEntry. Concrete items order before nodes
// at equal distance (so results pop deterministically), then by ID.
type knnQueue []knnEntry

func (q knnQueue) Len() int { return len(q) }
func (q knnQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	iLeaf, jLeaf := q[i].node == nil, q[j].node == nil
	if iLeaf != jLeaf {
		return iLeaf
	}
	return q[i].id < q[j].id
}
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnEntry)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Nearest implements NearestNeighborer by scanning; the reference
// implementation the R-tree is tested against.
func (l *Linear) Nearest(query geom.Envelope, k int) []int {
	if k <= 0 {
		return nil
	}
	type distItem struct {
		dist float64
		id   int
	}
	ds := make([]distItem, len(l.items))
	for i, it := range l.items {
		ds[i] = distItem{it.Env.Distance(query), it.ID}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].dist != ds[j].dist {
			return ds[i].dist < ds[j].dist
		}
		return ds[i].id < ds[j].id
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].id
	}
	return out
}

// Nearest implements NearestNeighborer for the grid by ring expansion:
// cells are visited in growing distance bands around the query until k
// candidates are confirmed.
func (g *Grid) Nearest(query geom.Envelope, k int) []int {
	if k <= 0 || g.size == 0 || g.dataEnv.IsEmpty() {
		return nil
	}
	// Expand the search radius geometrically until enough items are
	// found or the whole data extent is covered; then trim by exact
	// distance order. Simple and correct; the R-tree is the fast path.
	radius := g.cellSize
	maxRadius := 2 * (g.dataEnv.Width() + g.dataEnv.Height() + g.cellSize)
	var ids []int
	for {
		ids = g.SearchDistance(query, radius, nil)
		if len(ids) >= k || radius > maxRadius {
			break
		}
		radius *= 2
	}
	if len(ids) == 0 {
		return nil
	}
	// Exact ordering of the gathered candidates. Re-derive distances via
	// the stored items (first match per ID wins; duplicates are
	// impossible since SearchDistance deduplicates).
	dist := make(map[int]float64, len(ids))
	for _, items := range g.cells {
		for _, it := range items {
			if _, need := dist[it.ID]; !need {
				if contains(ids, it.ID) {
					dist[it.ID] = it.Env.Distance(query)
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if dist[ids[i]] != dist[ids[j]] {
			return dist[ids[i]] < dist[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// contains reports membership in a small ID slice.
func contains(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
