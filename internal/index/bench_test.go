package index

import (
	"testing"

	"repro/internal/geom"
)

func benchQueries() []geom.Envelope {
	return []geom.Envelope{
		{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20},
		{MinX: 50, MinY: 50, MaxX: 52, MaxY: 52},
		{MinX: 0, MinY: 0, MaxX: 5, MaxY: 100},
	}
}

func benchIndexes(n int) map[string]SpatialIndex {
	items := makeItems(n, 100, 42)
	return map[string]SpatialIndex{
		"rtree":  NewRTreeBulk(items),
		"grid":   NewGridBulk(items),
		"linear": NewLinear(items),
	}
}

func BenchmarkSearch(b *testing.B) {
	for name, idx := range benchIndexes(10000) {
		b.Run(name, func(b *testing.B) {
			queries := benchQueries()
			var buf []int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					buf = idx.Search(q, buf[:0])
				}
			}
		})
	}
}

func BenchmarkSearchDistance(b *testing.B) {
	for name, idx := range benchIndexes(10000) {
		b.Run(name, func(b *testing.B) {
			q := geom.Envelope{MinX: 50, MinY: 50, MaxX: 51, MaxY: 51}
			var buf []int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = idx.SearchDistance(q, 10, buf[:0])
			}
		})
	}
}

func BenchmarkNearest(b *testing.B) {
	items := makeItems(10000, 100, 42)
	impls := map[string]NearestNeighborer{
		"rtree":  NewRTreeBulk(items),
		"grid":   NewGridBulk(items),
		"linear": NewLinear(items),
	}
	for name, idx := range impls {
		b.Run(name, func(b *testing.B) {
			q := geom.Envelope{MinX: 33, MinY: 66, MaxX: 34, MaxY: 67}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Nearest(q, 10)
			}
		})
	}
}

func BenchmarkBuild(b *testing.B) {
	items := makeItems(10000, 100, 42)
	b.Run("rtree-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewRTreeBulk(items)
		}
	})
	b.Run("rtree-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := &RTree{}
			for _, it := range items {
				t.Insert(it)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewGridBulk(items)
		}
	})
}
