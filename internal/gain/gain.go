// Package gain implements Section 4.1 of the paper: the analytic lower
// bound on the number of frequent itemsets eliminated by Apriori-KC+'s
// same-feature-type filter.
//
// Setting: the largest frequent itemset has m elements, of which u groups
// are feature types with t_k >= 2 qualitative relations each, plus n other
// items (m = Σ t_k + n). Every subset of the largest frequent itemset is
// frequent (anti-monotonicity), so counting its subsets that contain at
// least two relations of one feature type lower-bounds the filter's gain.
//
// The paper states this as Formula (1), a sum over multinomial choices
// with the constraint ∃k: j_k >= 2. The closed form is
//
//	gain = 2^m − 2^n · Π_{k=1..u} (1 + t_k)
//
// (total subsets minus subsets taking at most one relation per feature
// type; subsets of size < 2 never satisfy the constraint, so no size
// correction is needed). MinGain implements the closed form, MinGainEnum
// the literal enumeration; TestClosedFormMatchesEnumeration proves them
// equal. The closed form reproduces every published number — all of
// Table 3, Figure 3, and the Section 4.2 predictions (148 and 74) — while
// the paper's single worked example for Table 2 (printing 33 where the
// value is 28) appears to be an arithmetic slip; see EXPERIMENTS.md.
package gain

import (
	"fmt"
	"math/big"
)

// MinGain returns the minimum number of frequent itemsets eliminated by
// the same-feature filter, given the largest frequent itemset's
// composition: ts[k] is the number of qualitative relations of feature
// type k (each must be >= 2 to contribute; a group of 1 is equivalent to
// an extra independent item), and n is the number of remaining items.
// The result is exact for m <= 62; use MinGainBig beyond.
func MinGain(ts []int, n int) (uint64, error) {
	m := n
	for _, t := range ts {
		if t < 1 {
			return 0, fmt.Errorf("gain: group size must be >= 1, got %d", t)
		}
		m += t
	}
	if n < 0 {
		return 0, fmt.Errorf("gain: n must be >= 0, got %d", n)
	}
	if m > 62 {
		return 0, fmt.Errorf("gain: m = %d exceeds 62; use MinGainBig", m)
	}
	total := uint64(1) << uint(m)
	valid := uint64(1) << uint(n)
	for _, t := range ts {
		valid *= uint64(t) + 1
	}
	return total - valid, nil
}

// MinGainBig is MinGain in arbitrary precision, for compositions beyond
// 62 items.
func MinGainBig(ts []int, n int) (*big.Int, error) {
	m := n
	for _, t := range ts {
		if t < 1 {
			return nil, fmt.Errorf("gain: group size must be >= 1, got %d", t)
		}
		m += t
	}
	if n < 0 {
		return nil, fmt.Errorf("gain: n must be >= 0, got %d", n)
	}
	total := new(big.Int).Lsh(big.NewInt(1), uint(m))
	valid := new(big.Int).Lsh(big.NewInt(1), uint(n))
	for _, t := range ts {
		valid.Mul(valid, big.NewInt(int64(t)+1))
	}
	return total.Sub(total, valid), nil
}

// MinGainEnum computes the same quantity by literally enumerating every
// subset of the largest frequent itemset and testing the ∃k: j_k >= 2
// constraint — Formula (1) as printed. Exponential in m; use in tests.
func MinGainEnum(ts []int, n int) (uint64, error) {
	m := n
	for _, t := range ts {
		if t < 1 {
			return 0, fmt.Errorf("gain: group size must be >= 1, got %d", t)
		}
		m += t
	}
	if n < 0 {
		return 0, fmt.Errorf("gain: n must be >= 0, got %d", n)
	}
	if m > 24 {
		return 0, fmt.Errorf("gain: enumeration limited to m <= 24, got %d", m)
	}
	// Items 0..m-1: the first len(ts) blocks belong to the feature-type
	// groups, the last n items are independent.
	groupOf := make([]int, m)
	idx := 0
	for g, t := range ts {
		for i := 0; i < t; i++ {
			groupOf[idx] = g
			idx++
		}
	}
	for ; idx < m; idx++ {
		groupOf[idx] = -1
	}
	var count uint64
	perGroup := make([]int, len(ts))
	for mask := 0; mask < 1<<uint(m); mask++ {
		for g := range perGroup {
			perGroup[g] = 0
		}
		bad := false
		for i := 0; i < m && !bad; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if g := groupOf[i]; g >= 0 {
				perGroup[g]++
				if perGroup[g] >= 2 {
					bad = true
				}
			}
		}
		if bad {
			count++
		}
	}
	return count, nil
}

// TotalLowerBound returns Σ_{i=2..m} C(m, i) = 2^m − m − 1, the paper's
// lower bound on the total number of frequent itemsets (with two or more
// elements) when the largest frequent itemset has m elements.
func TotalLowerBound(m int) (uint64, error) {
	if m < 0 || m > 62 {
		return 0, fmt.Errorf("gain: m must be in [0, 62], got %d", m)
	}
	total := uint64(1) << uint(m)
	return total - uint64(m) - 1, nil
}

// UniformGain is MinGain for u groups of equal size t: the shape used by
// Table 3 (u = 1) and the Section 4.2 checks (u = 3, t = 2).
func UniformGain(u, t, n int) (uint64, error) {
	if u < 0 {
		return 0, fmt.Errorf("gain: u must be >= 0, got %d", u)
	}
	ts := make([]int, u)
	for i := range ts {
		ts[i] = t
	}
	return MinGain(ts, n)
}

// Table3 reproduces the paper's Table 3: minimal gain for a single
// feature-type group (u = 1) with t1 = 2..8 columns and n = 1..10 rows.
// The returned matrix is indexed [n-1][t1-2].
func Table3() [][]uint64 {
	out := make([][]uint64, 10)
	for n := 1; n <= 10; n++ {
		row := make([]uint64, 7)
		for t1 := 2; t1 <= 8; t1++ {
			g, err := UniformGain(1, t1, n)
			if err != nil {
				panic(err) // unreachable: all inputs in range
			}
			row[t1-2] = g
		}
		out[n-1] = row
	}
	return out
}

// SurfacePoint is one (t1, n, gain) sample of Figure 3's surface.
type SurfacePoint struct {
	T1, N int
	Gain  uint64
}

// Surface reproduces the paper's Figure 3: the minimal-gain surface for
// u = 1 over t1 = 1..t1Max and n = 1..nMax. Note t1 = 1 yields gain 0
// (one relation of a feature type can never form a same-feature pair),
// which is the flat edge visible in the figure.
func Surface(t1Max, nMax int) ([]SurfacePoint, error) {
	if t1Max < 1 || nMax < 1 {
		return nil, fmt.Errorf("gain: surface bounds must be >= 1, got %d, %d", t1Max, nMax)
	}
	var pts []SurfacePoint
	for t1 := 1; t1 <= t1Max; t1++ {
		for n := 1; n <= nMax; n++ {
			g, err := UniformGain(1, t1, n)
			if err != nil {
				return nil, err
			}
			pts = append(pts, SurfacePoint{T1: t1, N: n, Gain: g})
		}
	}
	return pts, nil
}
