package gain

import (
	"math/rand"
	"testing"
)

// TestTable3Exact checks every one of the 70 published Table 3 values.
func TestTable3Exact(t *testing.T) {
	// Rows n = 1..10, columns t1 = 2..8, transcribed from the paper.
	want := [][]uint64{
		{2, 8, 22, 52, 114, 240, 494},
		{4, 16, 44, 104, 228, 480, 988},
		{8, 32, 88, 208, 456, 960, 1976},
		{16, 64, 176, 416, 912, 1920, 3952},
		{32, 128, 352, 832, 1824, 3840, 7904},
		{64, 256, 704, 1664, 3648, 7680, 15808},
		{128, 512, 1408, 3328, 7296, 15360, 31616},
		{256, 1024, 2816, 6656, 14592, 30720, 63232},
		{512, 2048, 5632, 13312, 29184, 61440, 126464},
		{1024, 4096, 11264, 26624, 58368, 122880, 252928},
	}
	got := Table3()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("Table3[n=%d][t1=%d] = %d, want %d", i+1, j+2, got[i][j], want[i][j])
			}
		}
	}
}

// TestSection42GainPredictions checks the two worked predictions in the
// paper's Section 4.2.
func TestSection42GainPredictions(t *testing.T) {
	// m = 8, u = 3, t1 = t2 = t3 = n = 2 -> 148.
	g, err := MinGain([]int{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g != 148 {
		t.Errorf("gain(2,2,2; n=2) = %d, want 148", g)
	}
	// m = 7, u = 3, t = 2,2,2, n = 1 -> 74.
	g, err = MinGain([]int{2, 2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g != 74 {
		t.Errorf("gain(2,2,2; n=1) = %d, want 74", g)
	}
}

// TestPaperWorkedExampleErratum documents the Table 2 worked example: the
// paper prints a minimal gain of 33 for m=6, u=2, t1=t2=2, n=2, but the
// formula (and exhaustive enumeration) gives 28, which correctly
// lower-bounds the 30 same-feature itemsets of the Table 2 data.
func TestPaperWorkedExampleErratum(t *testing.T) {
	g, err := MinGain([]int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g != 28 {
		t.Errorf("gain(2,2; n=2) = %d, want 28 (paper misprints 33)", g)
	}
	e, err := MinGainEnum([]int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e != 28 {
		t.Errorf("enumerated gain = %d, want 28", e)
	}
}

// TestClosedFormMatchesEnumeration proves the closed form equals the
// paper's Formula (1) enumeration over random compositions.
func TestClosedFormMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		u := rng.Intn(4)
		ts := make([]int, u)
		m := 0
		for i := range ts {
			ts[i] = 1 + rng.Intn(4)
			m += ts[i]
		}
		n := rng.Intn(6)
		if m+n > 18 { // keep enumeration fast
			continue
		}
		closed, err := MinGain(ts, n)
		if err != nil {
			t.Fatal(err)
		}
		enum, err := MinGainEnum(ts, n)
		if err != nil {
			t.Fatal(err)
		}
		if closed != enum {
			t.Fatalf("ts=%v n=%d: closed %d != enum %d", ts, n, closed, enum)
		}
	}
}

func TestMinGainBigAgreesWithUint64(t *testing.T) {
	cases := []struct {
		ts []int
		n  int
	}{
		{[]int{2, 2}, 2},
		{[]int{2, 2, 2}, 2},
		{[]int{8}, 10},
		{[]int{3, 4, 5}, 7},
	}
	for _, tc := range cases {
		small, err := MinGain(tc.ts, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		big, err := MinGainBig(tc.ts, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if !big.IsUint64() || big.Uint64() != small {
			t.Errorf("ts=%v n=%d: big %s != %d", tc.ts, tc.n, big, small)
		}
	}
	// Beyond 62 items only MinGainBig works.
	ts := []int{40, 40}
	if _, err := MinGain(ts, 0); err == nil {
		t.Error("MinGain should refuse m > 62")
	}
	b, err := MinGainBig(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sign() <= 0 {
		t.Error("big gain must be positive")
	}
}

func TestTotalLowerBound(t *testing.T) {
	// Section 4.1: m = 6 -> 57, "correct because Table 2 contains 60".
	got, err := TotalLowerBound(6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 57 {
		t.Errorf("TotalLowerBound(6) = %d, want 57", got)
	}
	// Σ C(m,i) for i=2..m equals 2^m - m - 1.
	for m := 0; m <= 20; m++ {
		got, err := TotalLowerBound(m)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		for i := 2; i <= m; i++ {
			want += binom(m, i)
		}
		if got != want {
			t.Errorf("TotalLowerBound(%d) = %d, want %d", m, got, want)
		}
	}
	if _, err := TotalLowerBound(-1); err == nil {
		t.Error("negative m should fail")
	}
	if _, err := TotalLowerBound(63); err == nil {
		t.Error("m > 62 should fail")
	}
}

func binom(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	r := uint64(1)
	for i := 0; i < k; i++ {
		r = r * uint64(n-i) / uint64(i+1)
	}
	return r
}

func TestMinGainErrors(t *testing.T) {
	if _, err := MinGain([]int{0}, 1); err == nil {
		t.Error("zero group should fail")
	}
	if _, err := MinGain([]int{2}, -1); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := MinGainBig([]int{0}, 1); err == nil {
		t.Error("big: zero group should fail")
	}
	if _, err := MinGainBig([]int{2}, -1); err == nil {
		t.Error("big: negative n should fail")
	}
	if _, err := MinGainEnum([]int{0}, 1); err == nil {
		t.Error("enum: zero group should fail")
	}
	if _, err := MinGainEnum([]int{2}, -1); err == nil {
		t.Error("enum: negative n should fail")
	}
	if _, err := MinGainEnum([]int{20}, 20); err == nil {
		t.Error("enum: huge m should fail")
	}
	if _, err := UniformGain(-1, 2, 2); err == nil {
		t.Error("uniform: negative u should fail")
	}
}

func TestGainSingleRelationGroupIsZeroContribution(t *testing.T) {
	// A feature type with a single relation can never form a
	// same-feature pair: gain(t=1, n) must be 0 and adding such a group
	// is the same as adding one more independent item.
	g, err := UniformGain(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Errorf("gain(t1=1) = %d, want 0", g)
	}
	a, _ := MinGain([]int{3, 1}, 4)
	b, _ := MinGain([]int{3}, 5)
	if a != b {
		t.Errorf("singleton group not equivalent to extra item: %d vs %d", a, b)
	}
}

func TestGainMonotonicity(t *testing.T) {
	// Gain grows with both t1 and n.
	prev := uint64(0)
	for t1 := 2; t1 <= 10; t1++ {
		g, _ := UniformGain(1, t1, 3)
		if g <= prev {
			t.Errorf("gain not increasing in t1 at %d: %d <= %d", t1, g, prev)
		}
		prev = g
	}
	prev = 0
	for n := 1; n <= 10; n++ {
		g, _ := UniformGain(1, 3, n)
		if g <= prev {
			t.Errorf("gain not increasing in n at %d: %d <= %d", n, g, prev)
		}
		prev = g
	}
	// Doubling law visible in Table 3: each +1 in n doubles the gain.
	g1, _ := UniformGain(1, 4, 3)
	g2, _ := UniformGain(1, 4, 4)
	if g2 != 2*g1 {
		t.Errorf("doubling law broken: %d -> %d", g1, g2)
	}
}

func TestSurface(t *testing.T) {
	pts, err := Surface(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 80 {
		t.Fatalf("surface points = %d, want 80", len(pts))
	}
	// The t1 = 1 edge is flat zero; the far corner matches Table 3.
	for _, p := range pts {
		if p.T1 == 1 && p.Gain != 0 {
			t.Errorf("surface(1, %d) = %d, want 0", p.N, p.Gain)
		}
		if p.T1 == 8 && p.N == 10 && p.Gain != 252928 {
			t.Errorf("surface(8, 10) = %d, want 252928", p.Gain)
		}
	}
	if _, err := Surface(0, 5); err == nil {
		t.Error("zero bounds should fail")
	}
}
