package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/geom"
	"repro/internal/qsr"
	"repro/internal/transact"
)

// ExtractBenchResult is one extraction benchmark measurement, written to
// BENCH_extract.json so the perf trajectory covers spatial predicate
// extraction — the cost the paper identifies as dominant — and not just
// the mining passes.
type ExtractBenchResult struct {
	// Name identifies the workload:
	// "relate/<scenario>/<prepared|unprepared>" for per-pair rows and
	// "extract/rows=<n>/<families>/<index>/<prepared|unprepared>" for
	// whole-table rows.
	Name string `json:"name"`
	// N is the number of timed iterations the harness settled on.
	N int `json:"n"`
	// NsPerOp is wall time per op (one relate, or one full extraction).
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp and BytesPerOp come from the allocation profile.
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	// Rows and NsPerRow are set on extraction workloads: the reference
	// row count and the per-row cost.
	Rows     int     `json:"rows,omitempty"`
	NsPerRow float64 `json:"nsPerRow,omitempty"`
	// Items is the total item count of the extracted table — the
	// correctness anchor: prepared and unprepared rows of the same
	// workload must agree (the runner additionally deep-compares the
	// tables before timing).
	Items int `json:"items,omitempty"`
}

// benchNgon builds a regular n-gon — the polygon shape of the per-pair
// relate workloads.
func benchNgon(n int, cx, cy, r float64) geom.Polygon {
	coords := make([]geom.Point, n)
	for i := range coords {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = geom.Pt(cx+r*math.Cos(theta), cy+r*math.Sin(theta))
	}
	return geom.Polygon{Shell: geom.Ring{Coords: coords}}
}

// ExtractBench measures the spatial-join workloads: per-pair DE-9IM
// relates on polygon scenes and whole-table scene extraction across
// row counts, candidate indexes, and the prepared/unprepared refine
// paths.
func ExtractBench() ([]ExtractBenchResult, error) {
	out := relatePairBench()
	ext, err := extractTableBench()
	if err != nil {
		return nil, err
	}
	return append(out, ext...), nil
}

// relatePairBench measures single Relate calls on the polygon-pair
// scenarios a spatial join refines: overlapping, touching, and
// line-crossing geometry.
func relatePairBench() []ExtractBenchResult {
	pairs := []struct {
		name string
		a, b geom.Geometry
	}{
		{"polygon-overlap", benchNgon(32, 0, 0, 10), benchNgon(32, 8, 0, 10)},
		{"polygon-touch", geom.Rect(0, 0, 10, 10), geom.Rect(10, 0, 20, 10)},
		{"polygon-contained", benchNgon(16, 0, 0, 10), benchNgon(16, 3, 0, 4)},
		{"line-polygon", geom.Line(geom.Pt(-15, 0), geom.Pt(15, 0)), benchNgon(32, 0, 0, 10)},
	}
	var out []ExtractBenchResult
	for _, pc := range pairs {
		a, b := pc.a, pc.b
		pa, pb := geom.Prepare(a), geom.Prepare(b)
		if de9im.RelatePrepared(pa, pb) != de9im.Relate(a, b) {
			panic(fmt.Sprintf("extract bench: prepared relate diverges on %s", pc.name))
		}
		out = append(out, benchMeasure("relate/"+pc.name+"/unprepared", func() {
			de9im.Relate(a, b)
		}))
		out = append(out, benchMeasure("relate/"+pc.name+"/prepared", func() {
			de9im.RelatePrepared(pa, pb)
		}))
	}
	return out
}

// extractTableBench measures whole-table extraction on generated scenes:
// rows × relation families × candidate index × prepared/unprepared.
func extractTableBench() ([]ExtractBenchResult, error) {
	type workload struct {
		name string
		grid int
		opts transact.Options
	}
	topo := transact.DefaultOptions()
	topoDist := topo
	topoDist.Distance = true
	topoDist.Thresholds = qsr.DefaultThresholds(10)
	grid := topo
	grid.Index = transact.GridIndex
	nested := topo
	nested.Index = transact.NoIndex
	workloads := []workload{
		{"extract/rows=100/topo/rtree", 10, topo},
		{"extract/rows=100/topo+dist/rtree", 10, topoDist},
		{"extract/rows=100/topo/grid", 10, grid},
		{"extract/rows=100/topo/none", 10, nested},
		{"extract/rows=400/topo/rtree", 20, topo},
	}
	var out []ExtractBenchResult
	scenes := map[int]*dataset.Dataset{}
	for _, w := range workloads {
		d := scenes[w.grid]
		if d == nil {
			var err error
			d, err = datagen.GenerateScene(datagen.DefaultScene(w.grid, w.grid, 1))
			if err != nil {
				return nil, err
			}
			scenes[w.grid] = d
		}
		unprep := w.opts
		unprep.NoPrepare = true
		// Correctness anchor: both refine paths must emit the same table.
		tp, err := transact.Extract(d, w.opts)
		if err != nil {
			return nil, err
		}
		tu, err := transact.Extract(d, unprep)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(tp, tu) {
			return nil, fmt.Errorf("extract bench: %s: prepared and unprepared tables diverge", w.name)
		}
		items := 0
		for _, row := range tp.Transactions {
			items += len(row.Items)
		}
		rows := len(tp.Transactions)
		for _, variant := range []struct {
			suffix string
			opts   transact.Options
		}{
			{"/unprepared", unprep},
			{"/prepared", w.opts},
		} {
			opts := variant.opts
			r := benchMeasure(w.name+variant.suffix, func() {
				if _, err := transact.Extract(d, opts); err != nil {
					panic(err)
				}
			})
			r.Rows = rows
			r.NsPerRow = r.NsPerOp / float64(rows)
			r.Items = items
			out = append(out, r)
		}
	}
	return out, nil
}

// benchMeasure times fn under the testing benchmark harness with
// allocation reporting.
func benchMeasure(name string, fn func()) ExtractBenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return ExtractBenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// WriteExtractBenchJSON runs ExtractBench and writes the results as an
// indented JSON array — the BENCH_extract.json emitter behind
// `cmd/experiments -bench-extract-json`.
func WriteExtractBenchJSON(w io.Writer) error {
	results, err := ExtractBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
