package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/transact"
)

func TestBenchDiffGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_test.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(baseline, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`[
		{"name":"w/fast","nsPerOp":1000},
		{"name":"w/slow","nsPerOp":1000},
		{"name":"w/gone","nsPerOp":1000}
	]`)
	fresh := []byte(`[
		{"name":"w/fast","nsPerOp":900},
		{"name":"w/slow","nsPerOp":1300},
		{"name":"w/new","nsPerOp":42}
	]`)
	findings, err := BenchDiff(baseline, fresh)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DiffFinding{}
	for _, f := range findings {
		byName[f.Name] = f
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %+v (new workloads must not gate)", findings)
	}
	if f := byName["w/fast"]; f.Regressed || f.Missing || f.Ratio != 0.9 {
		t.Errorf("fast: %+v", f)
	}
	if f := byName["w/slow"]; !f.Regressed || f.Ratio != 1.3 {
		t.Errorf("slow must regress at 1.3x with %.2f tolerance: %+v", DiffTolerance, f)
	}
	if f := byName["w/gone"]; !f.Missing {
		t.Errorf("gone must be flagged missing: %+v", f)
	}
	var sb strings.Builder
	if !FormatDiff(&sb, findings) {
		t.Error("FormatDiff must report failure")
	}
	for _, want := range []string{"REGRESS", "MISSING", "ok"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}

	// Within tolerance on both sides passes.
	write(`[{"name":"w/a","nsPerOp":1000}]`)
	findings, err = BenchDiff(baseline, []byte(`[{"name":"w/a","nsPerOp":1249}]`))
	if err != nil {
		t.Fatal(err)
	}
	var sb2 strings.Builder
	if FormatDiff(&sb2, findings) {
		t.Errorf("1.249x is inside the %.2f tolerance:\n%s", DiffTolerance, sb2.String())
	}

	// Allocation growth past the tolerance fails even when wall time
	// improves; within tolerance passes; baselines without allocs/op
	// never gate on that axis.
	write(`[
		{"name":"w/leak","nsPerOp":1000,"allocsPerOp":100},
		{"name":"w/lean","nsPerOp":1000,"allocsPerOp":100},
		{"name":"w/untracked","nsPerOp":1000}
	]`)
	findings, err = BenchDiff(baseline, []byte(`[
		{"name":"w/leak","nsPerOp":500,"allocsPerOp":126},
		{"name":"w/lean","nsPerOp":1000,"allocsPerOp":125},
		{"name":"w/untracked","nsPerOp":1000,"allocsPerOp":999999}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	byName = map[string]DiffFinding{}
	for _, f := range findings {
		byName[f.Name] = f
	}
	if f := byName["w/leak"]; !f.AllocsRegressed || f.Regressed {
		t.Errorf("leak must regress on allocs only: %+v", f)
	}
	if f := byName["w/lean"]; f.AllocsRegressed {
		t.Errorf("1.25x allocs is inside the tolerance: %+v", f)
	}
	if f := byName["w/untracked"]; f.AllocsRegressed {
		t.Errorf("untracked baseline must not gate allocs: %+v", f)
	}
	var sb3 strings.Builder
	if !FormatDiff(&sb3, findings) {
		t.Error("FormatDiff must report the allocation regression")
	}
	if !strings.Contains(sb3.String(), "ALLOCS") {
		t.Errorf("report missing ALLOCS line:\n%s", sb3.String())
	}

	if _, err := BenchDiff(filepath.Join(dir, "nope.json"), fresh); err == nil {
		t.Error("missing baseline must error")
	}
	write(`not json`)
	if _, err := BenchDiff(baseline, fresh); err == nil {
		t.Error("corrupt baseline must error")
	}
}

// TestIncrementalBenchChain exercises the chain builder and one timed
// pair on a small scene: the delta row must verify against the
// from-scratch oracle and re-extract fewer rows than the full table.
func TestIncrementalBenchChain(t *testing.T) {
	d, err := datagen.GenerateScene(datagen.DefaultScene(5, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := buildMutationChain(d, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 6 {
		t.Fatalf("chain length = %d", len(chain))
	}
	for i, step := range chain {
		if got := step.cs.Count(); got != 2 {
			t.Errorf("step %d changed %d features, want 2", i, got)
		}
	}
	rows := len(d.Reference.Features)
	pair, err := benchChain(d, chain, transact.DefaultOptions(), rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 {
		t.Fatalf("pair = %+v", pair)
	}
	delta, full := pair[0], pair[1]
	if !strings.HasSuffix(delta.Name, "/delta") || !strings.HasSuffix(full.Name, "/full") {
		t.Fatalf("row names: %q, %q", delta.Name, full.Name)
	}
	if !delta.Verified || !full.Verified {
		t.Error("rows must be oracle-verified")
	}
	if delta.RowsDirtyPerOp <= 0 || delta.RowsDirtyPerOp >= float64(rows) {
		t.Errorf("rowsDirtyPerOp = %g, want in (0, %d)", delta.RowsDirtyPerOp, rows)
	}
	if delta.Speedup <= 0 {
		t.Errorf("speedup = %g", delta.Speedup)
	}

	// Oversized batches are rejected up front.
	if _, err := buildMutationChain(d, 1_000_000, 1); err == nil {
		t.Error("batch larger than the feature population must error")
	}
}

// TestIncrementalBenchDeterministicChains pins the chain generator:
// same scene, same parameters, same ops.
func TestIncrementalBenchDeterministicChains(t *testing.T) {
	d, err := datagen.GenerateScene(datagen.DefaultScene(4, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	a, err := buildMutationChain(d, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildMutationChain(d, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		da, db := a[i].cs, b[i].cs
		if da.Count() != db.Count() {
			t.Fatalf("step %d diverged: %d vs %d changes", i, da.Count(), db.Count())
		}
	}
	at, err := transact.Extract(a[len(a)-1].nd, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bt, err := transact.Extract(b[len(b)-1].nd, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Transactions) != len(bt.Transactions) {
		t.Fatal("final tables diverged")
	}
	for i := range at.Transactions {
		ra, rb := at.Transactions[i], bt.Transactions[i]
		if ra.RefID != rb.RefID || len(ra.Items) != len(rb.Items) {
			t.Fatalf("row %d diverged: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.Items {
			if ra.Items[j] != rb.Items[j] {
				t.Fatalf("row %d item %d diverged", i, j)
			}
		}
	}
}
