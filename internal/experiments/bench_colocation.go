package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/colocation"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// ColocationBenchResult is one co-location mining measurement, written
// to BENCH_colocation.json. The grid sweeps scene shape × engine ×
// worker fan-out, so the perf gate tracks the parallel CSR neighbor
// materialization, the star-neighborhood prune, and the prevalence
// walk separately from the transaction engines — and specifically pins
// joinless against clique on the dense scenes where the clique
// engine's instance tables blow up.
type ColocationBenchResult struct {
	// Name identifies the workload:
	// "colocation/scene=<s>/dist=<d>/minpi=<p>/engine=<e>/par=<w>".
	Name string `json:"name"`
	// N is the number of timed iterations the harness settled on.
	N int `json:"n"`
	// NsPerOp is wall time per full co-location run.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp and BytesPerOp come from the allocation profile.
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	// Instances is the scene's total instance count.
	Instances int `json:"instances"`
	// Prevalent is the prevalent-pattern count — the correctness anchor
	// for the timing row.
	Prevalent int `json:"prevalent"`
	// RefinedPairs is the materialized neighbor-pair count.
	RefinedPairs int64 `json:"refinedPairs"`
	// StarPruned counts candidates the joinless upper bound discarded
	// (0 on clique rows) — how much work the prune actually saved.
	StarPruned int `json:"starPruned,omitempty"`
}

// colocationBenchScene is one benchmark scene: a generator config plus
// the distance/minPI the grid mines it at.
type colocationBenchScene struct {
	name  string
	gen   datagen.ColocationSceneConfig
	dist  float64
	minPI float64
}

// colocationBenchScenes is the committed workload grid. "base" and
// "large" carry over PR 9's lattice scenes for continuity; "clutter"
// (small extent, heavy noise — many refined pairs, dense neighbor
// lists) and "cliques" (hot sites holding 8 instances per type —
// multiplicative row-instance tables) are the dense scenes where
// candidate evaluation dominates. The cliques scene is shaped so every
// type pair is prevalent but the triple is not: the clique engine must
// materialize the 8³-rows-per-site triple table to discover that,
// while the joinless star bound rules it out from the CSR offsets
// alone.
func colocationBenchScenes() []colocationBenchScene {
	base := datagen.DefaultColocationScene(datagen.DefaultSeed)
	base.Clusters, base.Noise = 40, 20
	large := datagen.DefaultColocationScene(datagen.DefaultSeed)
	large.Clusters, large.Noise = 160, 80
	rep := func(name string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = name
		}
		return out
	}
	hot := func(types ...string) []string {
		var out []string
		for _, t := range types {
			out = append(out, rep(t, 8)...)
		}
		return out
	}
	return []colocationBenchScene{
		{name: "base", gen: base, dist: 1, minPI: 0.2},
		{name: "large", gen: large, dist: 4, minPI: 0.2},
		{name: "clutter", gen: datagen.ColocationSceneConfig{
			Seed: datagen.DefaultSeed, Types: []string{"a", "b", "c", "d", "e"},
			Extent: 14, Clusters: 10, ClusterSpread: 0.5, Noise: 140,
		}, dist: 1, minPI: 0.2},
		{name: "cliques", gen: datagen.ColocationSceneConfig{
			Seed: datagen.DefaultSeed, Types: []string{"a", "b", "c"},
			Extent: 120, Clusters: 16, ClusterSpread: 0.4,
			Planted: [][]string{
				hot("a", "b"), hot("b", "c"), hot("a", "c"), hot("a", "b", "c"),
			},
			Noise: 4,
		}, dist: 1, minPI: 0.5},
	}
}

// ColocationBench measures both co-location engines over the scene
// grid. Scenes are generated once, outside the timed region.
func ColocationBench() ([]ColocationBenchResult, error) {
	var out []ColocationBenchResult
	for _, sc := range colocationBenchScenes() {
		ds, err := datagen.GenerateColocationScene(sc.gen)
		if err != nil {
			return nil, err
		}
		for _, engine := range []colocation.Engine{colocation.EngineClique, colocation.EngineJoinless} {
			for _, par := range []int{1, 4} {
				mcfg := colocation.Config{
					Distance: sc.dist, MinPI: sc.minPI,
					Parallelism: par, Engine: engine,
				}
				res, err := benchColocationOne(ds, mcfg, sc.name)
				if err != nil {
					return nil, err
				}
				out = append(out, res)
			}
		}
	}
	return out, nil
}

// benchColocationOne times one configuration under testing.Benchmark.
func benchColocationOne(ds *dataset.Dataset, cfg colocation.Config, scene string) (ColocationBenchResult, error) {
	// One untimed run supplies the correctness anchors (and surfaces
	// config errors before the timing loop hides them).
	ref, err := colocation.Mine(ds, cfg)
	if err != nil {
		return ColocationBenchResult{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := colocation.Mine(ds, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	return ColocationBenchResult{
		Name: fmt.Sprintf("colocation/scene=%s/dist=%v/minpi=%v/engine=%s/par=%d",
			scene, cfg.Distance, cfg.MinPI, cfg.Engine, cfg.Parallelism),
		N:            r.N,
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		Instances:    ref.Instances,
		Prevalent:    len(ref.Prevalent),
		RefinedPairs: ref.RefinedPairs,
		StarPruned:   ref.StarPruned,
	}, nil
}

// WriteColocationBenchJSON runs ColocationBench and writes the results
// as indented JSON — the BENCH_colocation.json format the perf gate
// diffs.
func WriteColocationBenchJSON(w io.Writer) error {
	results, err := ColocationBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
