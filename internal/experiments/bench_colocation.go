package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/colocation"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// ColocationBenchResult is one co-location mining measurement, written
// to BENCH_colocation.json. The grid sweeps scene size × neighborhood
// distance × minimum participation index × worker fan-out, so the perf
// gate tracks the R-tree materialization and the parallel prevalence
// walk separately from the transaction engines.
type ColocationBenchResult struct {
	// Name identifies the workload:
	// "colocation/clusters=<c>/noise=<n>/dist=<d>/minpi=<p>/par=<w>".
	Name string `json:"name"`
	// N is the number of timed iterations the harness settled on.
	N int `json:"n"`
	// NsPerOp is wall time per full co-location run.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp and BytesPerOp come from the allocation profile.
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	// Instances is the scene's total instance count.
	Instances int `json:"instances"`
	// Prevalent is the prevalent-pattern count — the correctness anchor
	// for the timing row.
	Prevalent int `json:"prevalent"`
	// RefinedPairs is the materialized neighbor-pair count.
	RefinedPairs int64 `json:"refinedPairs"`
}

// ColocationBench measures the co-location engine over planted scenes.
// Scenes are generated once, outside the timed region.
func ColocationBench() ([]ColocationBenchResult, error) {
	type sceneSpec struct {
		clusters, noise int
	}
	var out []ColocationBenchResult
	for _, sc := range []sceneSpec{{40, 20}, {160, 80}} {
		cfg := datagen.DefaultColocationScene(datagen.DefaultSeed)
		cfg.Clusters = sc.clusters
		cfg.Noise = sc.noise
		ds, err := datagen.GenerateColocationScene(cfg)
		if err != nil {
			return nil, err
		}
		for _, dist := range []float64{1, 4} {
			for _, minPI := range []float64{0.2, 0.5} {
				for _, par := range []int{1, 4} {
					mcfg := colocation.Config{Distance: dist, MinPI: minPI, Parallelism: par}
					res, err := benchColocationOne(ds, mcfg, sc.clusters, sc.noise)
					if err != nil {
						return nil, err
					}
					out = append(out, res)
				}
			}
		}
	}
	return out, nil
}

// benchColocationOne times one configuration under testing.Benchmark.
func benchColocationOne(ds *dataset.Dataset, cfg colocation.Config, clusters, noise int) (ColocationBenchResult, error) {
	// One untimed run supplies the correctness anchors (and surfaces
	// config errors before the timing loop hides them).
	ref, err := colocation.Mine(ds, cfg)
	if err != nil {
		return ColocationBenchResult{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := colocation.Mine(ds, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	return ColocationBenchResult{
		Name: fmt.Sprintf("colocation/clusters=%d/noise=%d/dist=%v/minpi=%v/par=%d",
			clusters, noise, cfg.Distance, cfg.MinPI, cfg.Parallelism),
		N:            r.N,
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		Instances:    ref.Instances,
		Prevalent:    len(ref.Prevalent),
		RefinedPairs: ref.RefinedPairs,
	}, nil
}

// WriteColocationBenchJSON runs ColocationBench and writes the results
// as indented JSON — the BENCH_colocation.json format the perf gate
// diffs.
func WriteColocationBenchJSON(w io.Writer) error {
	results, err := ColocationBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
