package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	reports := All()
	if len(reports) != 11 {
		t.Fatalf("experiments = %d, want 11", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Errorf("report missing metadata: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate report ID %q", r.ID)
		}
		seen[r.ID] = true
		if len(r.Lines) == 0 {
			t.Errorf("%s: no output lines", r.ID)
		}
		for _, n := range r.Notes {
			if strings.HasPrefix(n, "ERROR") {
				t.Errorf("%s: %s", r.ID, n)
			}
		}
		if !strings.Contains(r.Format(), r.Title) {
			t.Errorf("%s: Format misses title", r.ID)
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	for _, id := range IDs() {
		r, ok := ByID(id)
		if !ok {
			t.Errorf("ByID(%q) unknown", id)
			continue
		}
		if r.ID != id {
			t.Errorf("ByID(%q) returned %q", id, r.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID should not resolve")
	}
	// Case-insensitive lookup.
	if _, ok := ByID("TABLE2"); !ok {
		t.Error("lookup should be case-insensitive")
	}
}

func TestTable3NoMismatches(t *testing.T) {
	r := Table3()
	last := r.Lines[len(r.Lines)-1]
	if !strings.Contains(last, "mismatches vs paper: 0 / 70") {
		t.Errorf("Table 3 mismatch line = %q", last)
	}
}

func TestTable2ReportNumbers(t *testing.T) {
	r := Table2()
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{" 60 ", " 60", "size 6: 1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table 2 report missing %q:\n%s", want, joined)
		}
	}
}

func TestGainChecksLowerBoundHolds(t *testing.T) {
	r := GainChecks42()
	for _, l := range r.Lines[1:] {
		if strings.Contains(l, "NO") {
			t.Errorf("gain lower bound violated: %s", l)
		}
	}
}

func TestFigure4ReductionsReported(t *testing.T) {
	r := Figure4()
	// Header + three minsup rows, then a blank line and the bar chart
	// (three minsup groups x three algorithms).
	if len(r.Lines) != 14 {
		t.Fatalf("figure4 lines = %d, want 14", len(r.Lines))
	}
	for _, l := range r.Lines[1:4] {
		if !strings.Contains(l, "%") {
			t.Errorf("row without reductions: %q", l)
		}
	}
	chart := strings.Join(r.Lines[5:], "\n")
	if !strings.Contains(chart, "#") {
		t.Error("figure 4 chart missing bars")
	}
	if !strings.Contains(chart, "apriori") || !strings.Contains(chart, "kc+") {
		t.Error("figure 4 chart missing series names")
	}
}
