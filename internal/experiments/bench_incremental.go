package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/transact"
)

// IncrementalBenchResult is one incremental-extraction measurement,
// written to BENCH_incremental.json. Rows come in ".../delta" and
// ".../full" pairs over the same pre-generated mutation chain: delta
// rows re-extract through an evolving transact.State, full rows rerun
// the whole extraction from scratch on every step.
type IncrementalBenchResult struct {
	// Name identifies the workload:
	// "incremental/rows=<n>/edits=<k>/<delta|full>".
	Name string `json:"name"`
	// N is the number of timed mutation steps.
	N int `json:"n"`
	// NsPerOp is wall time per mutation step (apply the edit batch and
	// produce the successor's transaction table).
	NsPerOp float64 `json:"nsPerOp"`
	// Rows is the reference row count of the scene.
	Rows int `json:"rows"`
	// Edits is the feature-edit batch size per step.
	Edits int `json:"edits"`
	// RowsDirtyPerOp is the mean number of rows the delta path actually
	// re-extracted per step (delta rows only) — the sparsity the dirty
	// region buys.
	RowsDirtyPerOp float64 `json:"rowsDirtyPerOp,omitempty"`
	// Speedup is full-ns/op divided by delta-ns/op (delta rows only).
	Speedup float64 `json:"speedup,omitempty"`
	// Verified records that the delta path's final table was compared
	// equal to a from-scratch extraction of the final dataset; the
	// check runs outside the timed region.
	Verified bool `json:"verified"`
}

// incrementalSteps is the mutation-chain length each workload is timed
// over. Long enough that per-step means are stable, short enough that
// the full-extraction rows stay cheap to measure.
const incrementalSteps = 24

// mutationStep is one pre-generated link of a mutation chain: the
// successor dataset plus the structured diff that produced it. Chains
// are built before timing so the measured region is exactly
// "re-extract after an edit", not op application or WKT formatting.
type mutationStep struct {
	nd *dataset.Dataset
	cs *dataset.ChangeSet
}

// featureSlot addresses one relevant feature of a scene.
type featureSlot struct {
	layer string
	id    string
}

// IncrementalBench measures incremental re-extraction against
// from-scratch extraction over scene size × edit-batch size, on
// deterministic mutation chains.
func IncrementalBench() ([]IncrementalBenchResult, error) {
	opts := transact.DefaultOptions()
	var out []IncrementalBenchResult
	for _, grid := range []int{10, 14, 20} {
		d, err := datagen.GenerateScene(datagen.DefaultScene(grid, grid, 1))
		if err != nil {
			return nil, err
		}
		rows := len(d.Reference.Features)
		for _, edits := range []int{1, 8, 32} {
			chain, err := buildMutationChain(d, edits, incrementalSteps)
			if err != nil {
				return nil, err
			}
			pair, err := benchChain(d, chain, opts, rows, edits)
			if err != nil {
				return nil, err
			}
			out = append(out, pair...)
		}
	}
	return out, nil
}

// buildMutationChain pre-generates steps successive edit batches of
// size edits, each applied to the previous step's dataset. Edits are
// geometry updates of deterministically chosen relevant features: the
// feature's envelope (padded so points and lines stay two-dimensional)
// is nudged along x, alternating direction per step so the chain does
// not drift off the scene.
func buildMutationChain(d *dataset.Dataset, edits, steps int) ([]mutationStep, error) {
	var slots []featureSlot
	for _, l := range d.Relevant {
		for _, f := range l.Features {
			slots = append(slots, featureSlot{layer: l.Type, id: f.ID})
		}
	}
	if edits > len(slots) {
		return nil, fmt.Errorf("incremental bench: batch of %d edits exceeds %d features", edits, len(slots))
	}
	chain := make([]mutationStep, 0, steps)
	cur := d
	for s := 0; s < steps; s++ {
		ops := make([]dataset.Op, 0, edits)
		base := (s * 13) % len(slots)
		dx := 0.75
		if s%2 == 1 {
			dx = -0.75
		}
		for j := 0; j < edits; j++ {
			slot := slots[(base+j)%len(slots)]
			f, ok := findFeature(cur, slot)
			if !ok {
				return nil, fmt.Errorf("incremental bench: lost feature %s/%s", slot.layer, slot.id)
			}
			env := f.Geometry.Envelope()
			if env.MaxX-env.MinX < 0.5 {
				env.MaxX = env.MinX + 0.5
			}
			if env.MaxY-env.MinY < 0.5 {
				env.MaxY = env.MinY + 0.5
			}
			wkt := geom.Rect(env.MinX+dx, env.MinY, env.MaxX+dx, env.MaxY).WKT()
			ops = append(ops, dataset.Op{Action: dataset.OpUpdate, Layer: slot.layer, ID: slot.id, WKT: wkt})
		}
		nd, cs, err := cur.ApplyOps(ops)
		if err != nil {
			return nil, err
		}
		chain = append(chain, mutationStep{nd: nd, cs: cs})
		cur = nd
	}
	return chain, nil
}

// findFeature locates a relevant feature by layer type and ID.
func findFeature(d *dataset.Dataset, slot featureSlot) (*dataset.Feature, bool) {
	for _, l := range d.Relevant {
		if l.Type != slot.layer {
			continue
		}
		for i := range l.Features {
			if l.Features[i].ID == slot.id {
				return &l.Features[i], true
			}
		}
	}
	return nil, false
}

// benchChain times one workload's delta and full rows over the same
// chain and cross-checks the delta path's final table against a
// from-scratch oracle outside the timed region.
func benchChain(d *dataset.Dataset, chain []mutationStep, opts transact.Options, rows, edits int) ([]IncrementalBenchResult, error) {
	ctx := context.Background()

	// Delta row: one evolving state absorbs every step; each step's
	// cost includes assembling the successor table, the same product a
	// full extraction hands to the miner.
	st, err := transact.NewState(d, opts)
	if err != nil {
		return nil, err
	}
	dirty := 0
	start := time.Now()
	for _, step := range chain {
		td, err := st.Apply(ctx, step.nd, step.cs)
		if err != nil {
			return nil, err
		}
		st.Table()
		dirty += td.RowsDirty
	}
	deltaNs := float64(time.Since(start).Nanoseconds()) / float64(len(chain))

	// Oracle check, untimed: the evolved state must describe the final
	// dataset exactly as a cold extraction does.
	oracle, err := transact.Extract(chain[len(chain)-1].nd, opts)
	if err != nil {
		return nil, err
	}
	verified := reflect.DeepEqual(st.Table(), oracle)
	if !verified {
		return nil, fmt.Errorf("incremental bench: rows=%d edits=%d: delta table diverged from from-scratch extraction", rows, edits)
	}

	// Full row: re-extract every successor from scratch.
	start = time.Now()
	for _, step := range chain {
		if _, err := transact.Extract(step.nd, opts); err != nil {
			return nil, err
		}
	}
	fullNs := float64(time.Since(start).Nanoseconds()) / float64(len(chain))

	prefix := fmt.Sprintf("incremental/rows=%d/edits=%d", rows, edits)
	return []IncrementalBenchResult{
		{
			Name:           prefix + "/delta",
			N:              len(chain),
			NsPerOp:        deltaNs,
			Rows:           rows,
			Edits:          edits,
			RowsDirtyPerOp: float64(dirty) / float64(len(chain)),
			Speedup:        fullNs / deltaNs,
			Verified:       verified,
		},
		{
			Name:     prefix + "/full",
			N:        len(chain),
			NsPerOp:  fullNs,
			Rows:     rows,
			Edits:    edits,
			Verified: verified,
		},
	}, nil
}

// WriteIncrementalBenchJSON runs IncrementalBench and writes the
// results as an indented JSON array — the BENCH_incremental.json
// emitter behind `cmd/experiments -bench-incremental-json`.
func WriteIncrementalBenchJSON(w io.Writer) error {
	results, err := IncrementalBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
