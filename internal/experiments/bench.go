package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// BenchResult is one mining benchmark measurement in machine-readable
// form, written to BENCH_mining.json so the performance trajectory is
// tracked PR-over-PR.
type BenchResult struct {
	// Name identifies the workload: "<figure>/<algorithm>/minsup=<pct>".
	Name string `json:"name"`
	// N is the number of timed iterations the harness settled on.
	N int `json:"n"`
	// NsPerOp is wall time per full mining run.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp and BytesPerOp come from the allocation profile.
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	// FrequentSets is the size>=2 frequent-itemset count (the Figure 4/6
	// series value), a correctness anchor for the timing row.
	FrequentSets int `json:"frequentSets"`
	// Passes carries one entry per mining pass from a representative run.
	Passes []BenchPass `json:"passes,omitempty"`
}

// BenchPass is one mining pass of a benchmarked run.
type BenchPass struct {
	K                 int   `json:"k"`
	Candidates        int   `json:"candidates"`
	PrunedDeps        int   `json:"prunedDeps,omitempty"`
	PrunedSameFeature int   `json:"prunedSameFeature,omitempty"`
	Frequent          int   `json:"frequent"`
	DurationMicros    int64 `json:"durationMicros"`
}

// benchAlgorithms are the engines the bench runner compares on the
// Figure 4-7 workloads.
var benchAlgorithms = []struct {
	name string
	fn   func(*itemset.DB, mining.Config) (*mining.Result, error)
	kc   bool // uses the KC+ config (Φ + same-feature filter)
}{
	{"apriori", mining.Apriori, false},
	{"apriori-kc+", mining.AprioriKCPlus, true},
	{"fpgrowth-kc+", mining.FPGrowth, true},
	{"eclat-kc+", mining.Eclat, true},
}

// MiningBench measures the Figure 4/5 and Figure 6/7 mining workloads
// for every engine, reporting ns/op, allocs/op, and per-pass statistics.
// It uses the testing harness's benchmark driver, so numbers are
// directly comparable with `go test -bench` output.
func MiningBench() ([]BenchResult, error) {
	data1, err := datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		return nil, err
	}
	data2, err := datagen.PaperDataset2(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		return nil, err
	}
	deps := dataset1Deps()
	var out []BenchResult
	for _, alg := range benchAlgorithms {
		for _, minsup := range []float64{0.05, 0.10, 0.15} {
			cfg := mining.Config{MinSupport: minsup}
			if alg.kc {
				cfg.Dependencies = deps
				cfg.FilterSameFeature = true
			}
			out = append(out, benchOne(nameFor("figure4-5", alg.name, minsup), data1, cfg, alg.fn))
		}
	}
	for _, alg := range benchAlgorithms {
		for _, minsup := range []float64{0.05, 0.17} {
			cfg := mining.Config{MinSupport: minsup}
			if alg.kc {
				cfg.FilterSameFeature = true
			}
			out = append(out, benchOne(nameFor("figure6-7", alg.name, minsup), data2, cfg, alg.fn))
		}
	}
	scaling, err := eclatScalingBench()
	if err != nil {
		return nil, err
	}
	return append(out, scaling...), nil
}

// eclatScalingBench measures the sharded Eclat walk across worker
// counts on a large generated dataset — the Parallelism scaling series
// of BENCH_mining.json. The frequentSets anchor is identical at every
// worker count (the walk is deterministic); wall-clock gains track the
// host's core count, so single-core CI records flat rows.
func eclatScalingBench() ([]BenchResult, error) {
	const scalingRows = 8000
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, scalingRows)
	if err != nil {
		return nil, err
	}
	deps := dataset1Deps()
	var out []BenchResult
	for _, par := range []int{1, 2, 4, 8} {
		cfg := mining.Config{
			MinSupport:        0.03,
			Dependencies:      deps,
			FilterSameFeature: true,
			Parallelism:       par,
		}
		name := fmt.Sprintf("scaling-rows=%d/eclat-kc+/par=%d", scalingRows, par)
		out = append(out, benchOne(name, table, cfg, mining.Eclat))
	}
	return out, nil
}

func nameFor(figure, alg string, minsup float64) string {
	return fmt.Sprintf("%s/%s/minsup=%.0f%%", figure, alg, minsup*100)
}

// benchOne runs one workload under testing.Benchmark with allocation
// reporting and captures a representative run's pass statistics.
func benchOne(name string, table *dataset.Table, cfg mining.Config,
	alg func(*itemset.DB, mining.Config) (*mining.Result, error)) BenchResult {
	db := itemset.NewDB(table)
	db.BuildTidsets()
	rep, err := alg(db, cfg)
	if err != nil {
		panic(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := alg(db, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	res := BenchResult{
		Name:         name,
		N:            r.N,
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		FrequentSets: rep.NumFrequent(2),
	}
	for _, p := range rep.Stats {
		res.Passes = append(res.Passes, BenchPass{
			K:                 p.K,
			Candidates:        p.Candidates,
			PrunedDeps:        p.PrunedDeps,
			PrunedSameFeature: p.PrunedSameFeature,
			Frequent:          p.Frequent,
			DurationMicros:    p.Duration.Microseconds(),
		})
	}
	return res
}

// WriteMiningBenchJSON runs MiningBench and writes the results as an
// indented JSON array — the BENCH_mining.json emitter behind
// `cmd/experiments -bench-json`.
func WriteMiningBenchJSON(w io.Writer) error {
	results, err := MiningBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
