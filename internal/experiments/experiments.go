// Package experiments re-runs every table and figure of the paper's
// evaluation and reports paper-versus-measured rows. It is the engine
// behind cmd/experiments and the source of EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/gain"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/stats"
)

// Report is the outcome of reproducing one table or figure.
type Report struct {
	// ID is the experiment identifier ("table2", "figure4", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Lines is the formatted body: headed columns of paper-vs-measured
	// values or reproduced series.
	Lines []string
	// Notes carries discrepancy explanations and errata.
	Notes []string
}

// Format renders the report as readable text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// All runs every experiment in paper order.
func All() []*Report {
	return []*Report{
		Table1(), Table2(), Analysis41(), Table3(), Figure3(),
		Figure4(), Figure5(), Figure6(), Figure7(), GainChecks42(),
		Redundancy(),
	}
}

// ByID runs a single experiment by identifier; ok is false for unknown
// IDs.
func ByID(id string) (*Report, bool) {
	switch strings.ToLower(id) {
	case "table1":
		return Table1(), true
	case "table2":
		return Table2(), true
	case "table3":
		return Table3(), true
	case "figure3":
		return Figure3(), true
	case "figure4":
		return Figure4(), true
	case "figure5":
		return Figure5(), true
	case "figure6":
		return Figure6(), true
	case "figure7":
		return Figure7(), true
	case "analysis":
		return Analysis41(), true
	case "gainchecks":
		return GainChecks42(), true
	case "redundancy":
		return Redundancy(), true
	}
	return nil, false
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "table2", "analysis", "table3", "figure3",
		"figure4", "figure5", "figure6", "figure7", "gainchecks",
		"redundancy",
	}
}

// Table1 prints the paper's Table 1 sample verbatim.
func Table1() *Report {
	r := &Report{
		ID:    "table1",
		Title: "Partial dataset of Porto Alegre (districts x spatial/non-spatial predicates)",
	}
	for _, tx := range dataset.PortoAlegreTable().Transactions {
		r.Lines = append(r.Lines, fmt.Sprintf("%-12s %s", tx.RefID, strings.Join(tx.Items, ", ")))
	}
	r.Notes = append(r.Notes,
		"the geometric scene dataset.PortoAlegreScene extracts to exactly this table (TestPortoAlegreSceneReproducesTable1)")
	return r
}

// Table2 mines the Table 2-consistent reconstruction at minimum support
// 50% and compares the published counts.
func Table2() *Report {
	r := &Report{
		ID:    "table2",
		Title: "Frequent itemsets of Table 1 with minimum support 50%",
	}
	db := itemset.NewDB(dataset.Table2Reconstruction())
	res, err := mining.Apriori(db, mining.Config{MinSupport: 0.5})
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	same := 0
	for _, f := range res.Frequent {
		if len(f.Items) >= 2 && f.Items.HasSameFeaturePair(db.Dict) {
			same++
		}
	}
	r.Lines = append(r.Lines,
		fmt.Sprintf("%-44s %8s %8s", "metric", "paper", "measured"),
		fmt.Sprintf("%-44s %8d %8d", "frequent itemsets (size >= 2)", 60, res.NumFrequent(2)),
		fmt.Sprintf("%-44s %8d %8d", "itemsets with same-feature pair", 31, same),
		fmt.Sprintf("%-44s %8d %8d", "largest frequent itemset size", 6, res.MaxLen()),
	)
	bySize := res.CountBySize()
	for k := 2; k <= res.MaxLen(); k++ {
		r.Lines = append(r.Lines, fmt.Sprintf("  size %d: %d itemsets", k, bySize[k]))
	}
	// The full census, in the paper's Table 2 layout: itemsets grouped by
	// size, same-feature ("bold") entries marked with *.
	r.Lines = append(r.Lines, "", "  full frequent itemset census (* = same-feature pair, bold in the paper):")
	for k := 2; k <= res.MaxLen(); k++ {
		r.Lines = append(r.Lines, fmt.Sprintf("  k = %d:", k))
		for _, f := range res.Frequent {
			if len(f.Items) != k {
				continue
			}
			mark := " "
			if f.Items.HasSameFeaturePair(db.Dict) {
				mark = "*"
			}
			r.Lines = append(r.Lines, fmt.Sprintf("   %s %s (support %d)", mark, f.Items.Format(db.Dict), f.Support))
		}
	}
	r.Notes = append(r.Notes,
		"mined on the Table 2-consistent reconstruction; the printed Table 1 is inconsistent with Table 2 (it yields 47 itemsets, largest size 5)",
		"same-feature count measured 30 vs paper's 31: an off-by-one consistent with the paper's mis-evaluated Formula 1 example (33 printed, 28 actual)")
	return r
}

// Analysis41 checks the Section 4.1 worked numbers: the sum-of-binomials
// total lower bound and the minimal-gain example.
func Analysis41() *Report {
	r := &Report{
		ID:    "analysis",
		Title: "Section 4.1 worked analysis on Table 2",
	}
	lower, _ := gain.TotalLowerBound(6)
	g, _ := gain.MinGain([]int{2, 2}, 2)
	db := itemset.NewDB(dataset.Table2Reconstruction())
	res, _ := mining.Apriori(db, mining.Config{MinSupport: 0.5})
	plus, _ := mining.AprioriKCPlus(db, mining.Config{MinSupport: 0.5})
	realGain := res.NumFrequent(2) - plus.NumFrequent(2)
	r.Lines = append(r.Lines,
		fmt.Sprintf("%-52s %8s %8s", "metric", "paper", "measured"),
		fmt.Sprintf("%-52s %8d %8d", "total lower bound sum C(6,i), i=2..6", 57, lower),
		fmt.Sprintf("%-52s %8d %8d", "minimal gain (m=6, u=2, t1=t2=2, n=2)", 33, g),
		fmt.Sprintf("%-52s %8s %8d", "real gain on Table 2 data (Apriori - KC+)", "31*", realGain),
	)
	r.Notes = append(r.Notes,
		"ERRATUM: the paper's printed expansion evaluates to 33 but the formula gives 28; 28 correctly lower-bounds the real gain (30)",
		"*the paper reports 31 bold itemsets in Table 2; our reconstruction yields 30")
	return r
}

// Table3 regenerates the minimal-gain grid and diffs it against the
// published values.
func Table3() *Report {
	r := &Report{
		ID:    "table3",
		Title: "Minimal gain for u=1, t1=2..8 (columns) and n=1..10 (rows)",
	}
	paper := [][]uint64{
		{2, 8, 22, 52, 114, 240, 494},
		{4, 16, 44, 104, 228, 480, 988},
		{8, 32, 88, 208, 456, 960, 1976},
		{16, 64, 176, 416, 912, 1920, 3952},
		{32, 128, 352, 832, 1824, 3840, 7904},
		{64, 256, 704, 1664, 3648, 7680, 15808},
		{128, 512, 1408, 3328, 7296, 15360, 31616},
		{256, 1024, 2816, 6656, 14592, 30720, 63232},
		{512, 2048, 5632, 13312, 29184, 61440, 126464},
		{1024, 4096, 11264, 26624, 58368, 122880, 252928},
	}
	got := gain.Table3()
	mismatches := 0
	header := "  n\\t1 "
	for t1 := 2; t1 <= 8; t1++ {
		header += fmt.Sprintf("%9d", t1)
	}
	r.Lines = append(r.Lines, header)
	for n := 1; n <= 10; n++ {
		line := fmt.Sprintf("  %4d ", n)
		for j := range got[n-1] {
			line += fmt.Sprintf("%9d", got[n-1][j])
			if got[n-1][j] != paper[n-1][j] {
				mismatches++
			}
		}
		r.Lines = append(r.Lines, line)
	}
	r.Lines = append(r.Lines, fmt.Sprintf("  mismatches vs paper: %d / 70", mismatches))
	return r
}

// Figure3 regenerates the gain surface including the flat t1=1 edge.
func Figure3() *Report {
	r := &Report{
		ID:    "figure3",
		Title: "Minimal gain surface, u=1, t1=1..8, n=1..10",
	}
	pts, err := gain.Surface(8, 10)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	// Render as the same grid as Table 3 but including t1 = 1.
	byKey := map[[2]int]uint64{}
	for _, p := range pts {
		byKey[[2]int{p.T1, p.N}] = p.Gain
	}
	header := "  n\\t1 "
	for t1 := 1; t1 <= 8; t1++ {
		header += fmt.Sprintf("%9d", t1)
	}
	r.Lines = append(r.Lines, header)
	for n := 1; n <= 10; n++ {
		line := fmt.Sprintf("  %4d ", n)
		for t1 := 1; t1 <= 8; t1++ {
			line += fmt.Sprintf("%9d", byKey[[2]int{t1, n}])
		}
		r.Lines = append(r.Lines, line)
	}
	r.Notes = append(r.Notes, "the t1=1 column is the flat zero edge visible in the published 3-D plot")
	return r
}

// dataset1Deps converts the generator's dependency pairs into Φ.
func dataset1Deps() []mining.Pair {
	deps := make([]mining.Pair, len(datagen.Dataset1Dependencies))
	for i, d := range datagen.Dataset1Dependencies {
		deps[i] = mining.Pair{A: d.A, B: d.B}
	}
	return deps
}

// Figure4 sweeps dataset 1 over minimum supports 5/10/15% with all three
// algorithms, reporting frequent-set counts and reductions.
func Figure4() *Report {
	r := &Report{
		ID:    "figure4",
		Title: "Frequent patterns: Apriori vs Apriori-KC vs Apriori-KC+ (dataset 1)",
	}
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	deps := dataset1Deps()
	r.Lines = append(r.Lines,
		fmt.Sprintf("  %-8s %9s %9s %9s %10s %10s", "minsup", "apriori", "kc", "kc+", "kc-red", "kc+-red"))
	var labels []string
	chart := []stats.Series{{Name: "apriori"}, {Name: "kc"}, {Name: "kc+"}}
	for _, ms := range []float64{0.05, 0.10, 0.15} {
		db := itemset.NewDB(table)
		cfg := mining.Config{MinSupport: ms, Dependencies: deps}
		full, _ := mining.Apriori(db, cfg)
		kc, _ := mining.AprioriKC(db, cfg)
		plus, _ := mining.AprioriKCPlus(db, cfg)
		nf, nk, np := full.NumFrequent(2), kc.NumFrequent(2), plus.NumFrequent(2)
		r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %9d %9d %9d %9.1f%% %9.1f%%",
			fmt.Sprintf("%.0f%%", ms*100), nf, nk, np,
			100*(1-float64(nk)/float64(nf)), 100*(1-float64(np)/float64(nf))))
		labels = append(labels, fmt.Sprintf("minsup=%.0f%%", ms*100))
		chart[0].Values = append(chart[0].Values, float64(nf))
		chart[1].Values = append(chart[1].Values, float64(nk))
		chart[2].Values = append(chart[2].Values, float64(np))
	}
	r.Lines = append(r.Lines, "")
	for _, l := range strings.Split(strings.TrimRight(stats.BarChart(labels, chart, 40), "\n"), "\n") {
		r.Lines = append(r.Lines, "  "+l)
	}
	r.Notes = append(r.Notes,
		"paper: KC reduces ~28% and KC+ >60% vs Apriori at every minimum support; measured KC ~37% (synthetic substitute), KC+ >60% — ordering and scale preserved",
		"dataset: synthetic (the authors' GIS data is unavailable) with the published statistics: 13 spatial predicates, 6 feature types, 9 same-feature pairs, 4 dependencies")
	return r
}

// timeAlg runs the miner several times and returns the fastest wall-clock
// duration, the standard stable-timing estimator.
func timeAlg(table *dataset.Table, cfg mining.Config, alg func(*itemset.DB, mining.Config) (*mining.Result, error)) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		db := itemset.NewDB(table)
		start := time.Now()
		if _, err := alg(db, cfg); err != nil {
			return 0
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Figure5 measures mining time for the three algorithms on dataset 1.
func Figure5() *Report {
	r := &Report{
		ID:    "figure5",
		Title: "Computational time: Apriori vs Apriori-KC vs Apriori-KC+ (dataset 1)",
	}
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	deps := dataset1Deps()
	r.Lines = append(r.Lines,
		fmt.Sprintf("  %-8s %12s %12s %12s", "minsup", "apriori", "kc", "kc+"))
	for _, ms := range []float64{0.05, 0.10, 0.15} {
		cfg := mining.Config{MinSupport: ms, Dependencies: deps}
		tFull := timeAlg(table, cfg, mining.Apriori)
		tKC := timeAlg(table, cfg, mining.AprioriKC)
		tPlus := timeAlg(table, cfg, mining.AprioriKCPlus)
		r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %12v %12v %12v",
			fmt.Sprintf("%.0f%%", ms*100), tFull.Round(time.Microsecond), tKC.Round(time.Microsecond), tPlus.Round(time.Microsecond)))
	}
	r.Notes = append(r.Notes,
		"paper shape: time(KC+) <= time(KC) <= time(Apriori); absolute values reflect this machine, not the authors' 2007 testbed")
	return r
}

// Figure6 sweeps dataset 2 over the 5-17% range with Apriori and KC+.
func Figure6() *Report {
	r := &Report{
		ID:    "figure6",
		Title: "Frequent patterns: Apriori vs Apriori-KC+ (dataset 2, no dependencies)",
	}
	table, err := datagen.PaperDataset2(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	r.Lines = append(r.Lines,
		fmt.Sprintf("  %-8s %9s %9s %10s", "minsup", "apriori", "kc+", "reduction"))
	var labels []string
	chart := []stats.Series{{Name: "apriori"}, {Name: "kc+"}}
	for _, ms := range []float64{0.05, 0.08, 0.11, 0.14, 0.17} {
		db := itemset.NewDB(table)
		cfg := mining.Config{MinSupport: ms}
		full, _ := mining.Apriori(db, cfg)
		plus, _ := mining.AprioriKCPlus(db, cfg)
		nf, np := full.NumFrequent(2), plus.NumFrequent(2)
		r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %9d %9d %9.1f%%",
			fmt.Sprintf("%.0f%%", ms*100), nf, np, 100*(1-float64(np)/float64(nf))))
		labels = append(labels, fmt.Sprintf("minsup=%.0f%%", ms*100))
		chart[0].Values = append(chart[0].Values, float64(nf))
		chart[1].Values = append(chart[1].Values, float64(np))
	}
	r.Lines = append(r.Lines, "")
	for _, l := range strings.Split(strings.TrimRight(stats.BarChart(labels, chart, 40), "\n"), "\n") {
		r.Lines = append(r.Lines, "  "+l)
	}
	r.Notes = append(r.Notes,
		"paper: reduction > 55% at every minimum support; dataset: synthetic with the published statistics (10 spatial predicates, 5 same-feature pairs, no dependencies)")
	return r
}

// Figure7 measures mining time for Apriori and KC+ on dataset 2.
func Figure7() *Report {
	r := &Report{
		ID:    "figure7",
		Title: "Computational time: Apriori vs Apriori-KC+ (dataset 2)",
	}
	table, err := datagen.PaperDataset2(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	r.Lines = append(r.Lines,
		fmt.Sprintf("  %-8s %12s %12s", "minsup", "apriori", "kc+"))
	for _, ms := range []float64{0.05, 0.08, 0.11, 0.14, 0.17} {
		cfg := mining.Config{MinSupport: ms}
		tFull := timeAlg(table, cfg, mining.Apriori)
		tPlus := timeAlg(table, cfg, mining.AprioriKCPlus)
		r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %12v %12v",
			fmt.Sprintf("%.0f%%", ms*100), tFull.Round(time.Microsecond), tPlus.Round(time.Microsecond)))
	}
	r.Notes = append(r.Notes, "paper shape: KC+ is never slower than Apriori")
	return r
}

// GainChecks42 reproduces the Section 4.2 application of Formula 1 to the
// largest frequent itemsets of dataset 2 at 5% and 17% support.
func GainChecks42() *Report {
	r := &Report{
		ID:    "gainchecks",
		Title: "Formula 1 predictions vs real gain on dataset 2 (Section 4.2)",
	}
	table, err := datagen.PaperDataset2(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %3s %3s %6s %12s %9s %10s",
		"minsup", "m", "u", "t/n", "predicted", "real", "holds"))
	for _, ms := range []float64{0.05, 0.17} {
		db := itemset.NewDB(table)
		cfg := mining.Config{MinSupport: ms}
		full, _ := mining.Apriori(db, cfg)
		plus, _ := mining.AprioriKCPlus(db, cfg)
		largest := largestItemset(full)
		ts, n := composition(db.Dict, largest)
		predicted, _ := gain.MinGain(ts, n)
		real := full.NumFrequent(2) - plus.NumFrequent(2)
		holds := "yes"
		if uint64(real) < predicted {
			holds = "NO"
		}
		r.Lines = append(r.Lines, fmt.Sprintf("  %-8s %3d %3d %6s %12d %9d %10s",
			fmt.Sprintf("%.0f%%", ms*100), len(largest), len(ts), fmt.Sprintf("%v/%d", ts, n), predicted, real, holds))
	}
	r.Notes = append(r.Notes,
		"paper: minsup 5% has m=8, u=3, t=2,2,2, n=2 -> predicted 148, real 281; minsup 17% has m=7, n=1 -> predicted 74 = real 74",
		"the prediction is a lower bound on the real gain; shapes (m, u, t_k, n) match the paper at both supports")
	return r
}

// largestItemset returns a largest frequent itemset of a result.
func largestItemset(res *mining.Result) itemset.Itemset {
	var best itemset.Itemset
	for _, f := range res.Frequent {
		if len(f.Items) > len(best) {
			best = f.Items
		}
	}
	return best
}

// composition decomposes an itemset into the Formula 1 inputs: the sizes
// of the feature-type groups with >= 2 relations, and the count n of
// remaining items.
func composition(d *itemset.Dictionary, s itemset.Itemset) (ts []int, n int) {
	perType := map[string]int{}
	for _, id := range s {
		m := d.Meta(id)
		if m.Kind == itemset.KindSpatial {
			perType[m.FeatureType]++
		} else {
			n++
		}
	}
	types := make([]string, 0, len(perType))
	for ft := range perType {
		types = append(types, ft)
	}
	sort.Strings(types)
	for _, ft := range types {
		if c := perType[ft]; c >= 2 {
			ts = append(ts, c)
		} else {
			n += c
		}
	}
	return ts, n
}
