package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Redundancy runs the redundancy-elimination ablation the paper positions
// itself against (references [4], [9], [19]): closed and maximal
// itemset filters and non-redundant rule filtering, with and without the
// KC+ semantic filter. The point the numbers make is the paper's:
// redundancy elimination shrinks the output but cannot remove the
// same-feature patterns; KC+ composes with all of it.
func Redundancy() *Report {
	r := &Report{
		ID:    "redundancy",
		Title: "Redundancy elimination vs the KC+ semantic filter (dataset 1, minsup 10%)",
	}
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	db := itemset.NewDB(table)
	cfg := mining.Config{MinSupport: 0.10}
	full, err := mining.Apriori(db, cfg)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	plus, err := mining.AprioriKCPlus(db, cfg)
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}

	countSame := func(sets []mining.FrequentItemset) int {
		n := 0
		for _, f := range sets {
			if len(f.Items) >= 2 && f.Items.HasSameFeaturePair(db.Dict) {
				n++
			}
		}
		return n
	}
	countBig := func(sets []mining.FrequentItemset) int {
		n := 0
		for _, f := range sets {
			if len(f.Items) >= 2 {
				n++
			}
		}
		return n
	}

	r.Lines = append(r.Lines, fmt.Sprintf("  %-26s %10s %16s", "filter", "itemsets", "same-feature"))
	rows := []struct {
		name string
		sets []mining.FrequentItemset
	}{
		{"none (Apriori)", full.Frequent},
		{"closed [4]", mining.ClosedOnly(full.Frequent)},
		{"maximal [9]", mining.MaximalOnly(full.Frequent)},
		{"KC+ (this paper)", plus.Frequent},
		{"KC+ then closed", mining.ClosedOnly(plus.Frequent)},
		{"KC+ then maximal", mining.MaximalOnly(plus.Frequent)},
	}
	for _, row := range rows {
		r.Lines = append(r.Lines, fmt.Sprintf("  %-26s %10d %16d",
			row.name, countBig(row.sets), countSame(row.sets)))
	}

	// Rule-level redundancy (Zaki [19]).
	rules := mining.GenerateRules(full, 0.7)
	nonRed := mining.NonRedundantRules(rules)
	plusRules := mining.GenerateRules(plus, 0.7)
	r.Lines = append(r.Lines, "",
		fmt.Sprintf("  %-26s %10d", "rules (Apriori, conf>=0.7)", len(rules)),
		fmt.Sprintf("  %-26s %10d", "non-redundant rules [19]", len(nonRed)),
		fmt.Sprintf("  %-26s %10d", "rules after KC+", len(plusRules)),
	)
	sameRules := 0
	for _, rule := range nonRed {
		if rule.Antecedent.Union(rule.Consequent).HasSameFeaturePair(db.Dict) {
			sameRules++
		}
	}
	r.Lines = append(r.Lines, fmt.Sprintf("  %-26s %10d", "  ...still same-feature", sameRules))
	r.Notes = append(r.Notes,
		"closed/maximal/non-redundant filtering reduces volume but same-feature patterns survive every redundancy filter; only the KC+ semantic step removes them (the paper's Section 1 argument)")
	return r
}
