package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DiffTolerance is the relative ns/op (and allocs/op) regression the
// bench gate accepts before failing: re-measured workloads may be up
// to 25% worse than the committed baseline. Generous by design —
// shared CI runners jitter — while still catching order-of-magnitude
// regressions like a dropped index or an accidental O(n²) path.
// Allocation counts jitter far less than wall time, so the same
// tolerance is tight in practice on the allocs axis.
const DiffTolerance = 0.25

// benchRow is the subset of a benchmark record the gate compares on;
// BENCH_mining.json, BENCH_extract.json, and BENCH_colocation.json
// rows all decode into it. AllocsPerOp is optional — suites that
// predate allocation tracking have 0 there and skip the allocs gate.
type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// DiffFinding is one workload's baseline-versus-measured comparison.
type DiffFinding struct {
	// Name is the workload identifier.
	Name string
	// BaselineNs and MeasuredNs are the committed and re-measured
	// ns/op.
	BaselineNs float64
	MeasuredNs float64
	// Ratio is MeasuredNs / BaselineNs.
	Ratio float64
	// Regressed marks workloads above the wall-time tolerance.
	Regressed bool
	// BaselineAllocs and MeasuredAllocs are the committed and
	// re-measured allocs/op (0 when the suite does not record them).
	BaselineAllocs int64
	MeasuredAllocs int64
	// AllocsRatio is MeasuredAllocs / BaselineAllocs (0 when the
	// baseline records no allocations).
	AllocsRatio float64
	// AllocsRegressed marks workloads whose allocation count grew past
	// the tolerance — a leak of per-row or per-candidate allocations
	// regresses the gate even when wall time hides it.
	AllocsRegressed bool
	// Missing marks baseline workloads the fresh run no longer
	// produces (a renamed or dropped row also fails the gate: silently
	// losing coverage is a regression too).
	Missing bool
}

// BenchDiff re-measures a benchmark suite and compares it against a
// committed baseline file on both wall time and allocation count. New
// workloads absent from the baseline pass (they gate once committed);
// baseline workloads missing from the fresh run fail.
func BenchDiff(baselinePath string, fresh []byte) ([]DiffFinding, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("bench diff: reading baseline: %w", err)
	}
	var baseline, measured []benchRow
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return nil, fmt.Errorf("bench diff: parsing baseline %s: %w", baselinePath, err)
	}
	if err := json.Unmarshal(fresh, &measured); err != nil {
		return nil, fmt.Errorf("bench diff: parsing fresh run: %w", err)
	}
	byName := make(map[string]benchRow, len(measured))
	for _, m := range measured {
		byName[m.Name] = m
	}
	var out []DiffFinding
	for _, b := range baseline {
		got, ok := byName[b.Name]
		if !ok {
			out = append(out, DiffFinding{Name: b.Name, BaselineNs: b.NsPerOp, Missing: true})
			continue
		}
		f := DiffFinding{
			Name:           b.Name,
			BaselineNs:     b.NsPerOp,
			MeasuredNs:     got.NsPerOp,
			BaselineAllocs: b.AllocsPerOp,
			MeasuredAllocs: got.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			f.Ratio = got.NsPerOp / b.NsPerOp
			f.Regressed = f.Ratio > 1+DiffTolerance
		}
		if b.AllocsPerOp > 0 {
			f.AllocsRatio = float64(got.AllocsPerOp) / float64(b.AllocsPerOp)
			f.AllocsRegressed = f.AllocsRatio > 1+DiffTolerance
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FormatDiff renders the findings as an aligned report and reports
// whether any workload regressed (wall time or allocations) or went
// missing.
func FormatDiff(w io.Writer, findings []DiffFinding) (failed bool) {
	for _, f := range findings {
		switch {
		case f.Missing:
			fmt.Fprintf(w, "MISSING  %-55s baseline %.0f ns/op, absent from fresh run\n", f.Name, f.BaselineNs)
			failed = true
			continue
		case f.Regressed:
			fmt.Fprintf(w, "REGRESS  %-55s %.0f -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
				f.Name, f.BaselineNs, f.MeasuredNs, f.Ratio, 1+DiffTolerance)
			failed = true
		default:
			fmt.Fprintf(w, "ok       %-55s %.0f -> %.0f ns/op (%.2fx)\n",
				f.Name, f.BaselineNs, f.MeasuredNs, f.Ratio)
		}
		if f.AllocsRegressed {
			fmt.Fprintf(w, "ALLOCS   %-55s %d -> %d allocs/op (%.2fx, tolerance %.2fx)\n",
				f.Name, f.BaselineAllocs, f.MeasuredAllocs, f.AllocsRatio, 1+DiffTolerance)
			failed = true
		}
	}
	return failed
}
