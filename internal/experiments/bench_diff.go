package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DiffTolerance is the relative ns/op regression the bench gate
// accepts before failing: re-measured workloads may be up to 25%
// slower than the committed baseline. Generous by design — shared CI
// runners jitter — while still catching order-of-magnitude
// regressions like a dropped index or an accidental O(n²) path.
const DiffTolerance = 0.25

// benchRow is the subset of a benchmark record the gate compares on;
// both BENCH_mining.json and BENCH_extract.json rows decode into it.
type benchRow struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"nsPerOp"`
}

// DiffFinding is one workload's baseline-versus-measured comparison.
type DiffFinding struct {
	// Name is the workload identifier.
	Name string
	// BaselineNs and MeasuredNs are the committed and re-measured
	// ns/op.
	BaselineNs float64
	MeasuredNs float64
	// Ratio is MeasuredNs / BaselineNs.
	Ratio float64
	// Regressed marks workloads above the tolerance.
	Regressed bool
	// Missing marks baseline workloads the fresh run no longer
	// produces (a renamed or dropped row also fails the gate: silently
	// losing coverage is a regression too).
	Missing bool
}

// BenchDiff re-measures a benchmark suite and compares it against a
// committed baseline file. New workloads absent from the baseline pass
// (they gate once committed); baseline workloads missing from the
// fresh run fail.
func BenchDiff(baselinePath string, fresh []byte) ([]DiffFinding, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("bench diff: reading baseline: %w", err)
	}
	var baseline, measured []benchRow
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return nil, fmt.Errorf("bench diff: parsing baseline %s: %w", baselinePath, err)
	}
	if err := json.Unmarshal(fresh, &measured); err != nil {
		return nil, fmt.Errorf("bench diff: parsing fresh run: %w", err)
	}
	byName := make(map[string]float64, len(measured))
	for _, m := range measured {
		byName[m.Name] = m.NsPerOp
	}
	var out []DiffFinding
	for _, b := range baseline {
		got, ok := byName[b.Name]
		if !ok {
			out = append(out, DiffFinding{Name: b.Name, BaselineNs: b.NsPerOp, Missing: true})
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = got / b.NsPerOp
		}
		out = append(out, DiffFinding{
			Name:       b.Name,
			BaselineNs: b.NsPerOp,
			MeasuredNs: got,
			Ratio:      ratio,
			Regressed:  ratio > 1+DiffTolerance,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FormatDiff renders the findings as an aligned report and reports
// whether any workload regressed or went missing.
func FormatDiff(w io.Writer, findings []DiffFinding) (failed bool) {
	for _, f := range findings {
		switch {
		case f.Missing:
			fmt.Fprintf(w, "MISSING  %-55s baseline %.0f ns/op, absent from fresh run\n", f.Name, f.BaselineNs)
			failed = true
		case f.Regressed:
			fmt.Fprintf(w, "REGRESS  %-55s %.0f -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
				f.Name, f.BaselineNs, f.MeasuredNs, f.Ratio, 1+DiffTolerance)
			failed = true
		default:
			fmt.Fprintf(w, "ok       %-55s %.0f -> %.0f ns/op (%.2fx)\n",
				f.Name, f.BaselineNs, f.MeasuredNs, f.Ratio)
		}
	}
	return failed
}
