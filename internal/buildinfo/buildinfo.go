// Package buildinfo carries the shared version stamp of the qsrmine
// binaries. The version is set at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// and defaults to "dev". String() additionally reports the VCS revision
// recorded by the Go toolchain, so `qsrmine -version`, `qsrmined
// -version`, and the server's /healthz all agree on what is running.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the semantic version stamp, overridable via -ldflags.
var Version = "dev"

// Revision returns the VCS revision baked in by the Go toolchain (with a
// "+dirty" suffix for modified trees), or "" when built outside a
// checkout.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// String renders the full one-line version banner.
func String() string {
	s := Version
	if rev := Revision(); rev != "" {
		s += " (" + rev + ")"
	}
	return fmt.Sprintf("%s %s %s/%s", s, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
