package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mining"
	"repro/internal/qsr"
	"repro/internal/transact"
)

// TestConfigJSONRoundTrip pins the request-body contract: every Config
// field survives marshal → unmarshal, including the enum types and the
// nested extraction options.
func TestConfigJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero", Config{}},
		{"typical", Config{
			Algorithm:  AlgEclatKCPlus,
			MinSupport: 0.25,
		}},
		{"everything", Config{
			Extraction: transact.Options{
				Topological:     true,
				IncludeDisjoint: true,
				Distance:        true,
				Thresholds:      qsr.DistanceThresholds{VeryCloseMax: 10, CloseMax: 50},
				IncludeFarFrom:  true,
				Directional:     true,
				IncludeIsA:      true,
				Granularity:     transact.InstanceLevel,
				Index:           transact.GridIndex,
				Discretizer:     transact.EqualWidth{Bins: 4},
				Parallelism:     3,
			},
			Algorithm:     AlgAprioriKC,
			MinSupport:    0.07,
			Dependencies:  []mining.Pair{{A: "contains_street", B: "contains_illuminationPoint"}, {A: "x", B: "y"}},
			Counting:      mining.HorizontalCounting,
			Parallelism:   8,
			MinConfidence: 0.9,
			GenerateRules: true,
			PostFilter:    MaximalFilter,
		}},
		{"thresholds discretizer", Config{
			Extraction: transact.Options{
				Topological: true,
				Discretizer: transact.Thresholds{Cuts: []float64{3.2}, Labels: []string{"low", "high"}},
			},
			Algorithm:  AlgApriori,
			MinSupport: 0.5,
		}},
		{"equal frequency discretizer", Config{
			Extraction: transact.Options{
				Topological: true,
				Discretizer: transact.EqualFrequency{Bins: 3},
			},
			MinSupport: 0.5,
			PostFilter: ClosedFilter,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(tc.cfg)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back Config
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if !reflect.DeepEqual(tc.cfg, back) {
				t.Errorf("round trip changed the config:\n  in:  %+v\n  out: %+v\n  json: %s", tc.cfg, back, data)
			}
			// The encoding must be deterministic: the server's result
			// cache keys on the marshaled bytes.
			again, err := json.Marshal(back)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(data) != string(again) {
				t.Errorf("marshal not deterministic: %s vs %s", data, again)
			}
		})
	}
}

// TestConfigJSONEnumNames pins the canonical enum spellings on the wire.
func TestConfigJSONEnumNames(t *testing.T) {
	data, err := json.Marshal(Config{
		Algorithm:  AlgEclatKCPlus,
		MinSupport: 0.5,
		Counting:   mining.HorizontalCounting,
		PostFilter: ClosedFilter,
		Extraction: transact.Options{Topological: true, Granularity: transact.InstanceLevel, Index: transact.NoIndex},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"algorithm":"eclat-kc+"`,
		`"counting":"horizontal"`,
		`"postFilter":"closed"`,
		`"granularity":"instance"`,
		`"index":"none"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshaled config %s missing %s", data, want)
		}
	}
}

// TestConfigJSONRejectsBadInput pins the error behaviour for malformed
// request bodies: unknown enum names, unknown keys, and structural junk
// all fail with a descriptive error instead of mining with defaults.
func TestConfigJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown algorithm", `{"algorithm":"apriori-kd+","minSupport":0.5}`, "unknown algorithm"},
		{"unknown post filter", `{"algorithm":"apriori","postFilter":"open"}`, "unknown post filter"},
		{"unknown counting", `{"algorithm":"apriori","counting":"diagonal"}`, "unknown counting strategy"},
		{"unknown granularity", `{"algorithm":"apriori","extraction":{"granularity":"galaxy"}}`, "unknown granularity"},
		{"unknown index", `{"algorithm":"apriori","extraction":{"index":"btree"}}`, "unknown index kind"},
		{"unknown discretizer", `{"algorithm":"apriori","extraction":{"discretizer":{"kind":"psychic"}}}`, "unknown discretizer kind"},
		{"unknown field", `{"algoritm":"apriori"}`, "unknown field"},
		{"half dependency", `{"algorithm":"apriori","dependencies":[{"a":"x"}]}`, "dependency pair"},
		{"not an object", `[1,2,3]`, "decoding config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cfg Config
			err := json.Unmarshal([]byte(tc.body), &cfg)
			if err == nil {
				t.Fatalf("unmarshal %s succeeded, want error containing %q", tc.body, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigJSONDefaults: an omitted field decodes to the documented
// default (apriori algorithm, vertical counting, no post filter, zero
// extraction — which RunContext replaces with DefaultOptions).
func TestConfigJSONDefaults(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"minSupport":0.4}`), &cfg); err != nil {
		t.Fatal(err)
	}
	want := Config{MinSupport: 0.4}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("decoded %+v, want %+v", cfg, want)
	}
	if !cfg.Extraction.IsZero() {
		t.Error("omitted extraction must decode to the zero Options")
	}
}

// TestConfigJSONCustomDiscretizerFails: a Config holding a custom
// Discretizer implementation has no wire form and must say so.
func TestConfigJSONCustomDiscretizerFails(t *testing.T) {
	cfg := Config{
		Extraction: transact.Options{Topological: true, Discretizer: customDisc{}},
		MinSupport: 0.5,
	}
	if _, err := json.Marshal(cfg); err == nil {
		t.Fatal("marshal with custom discretizer must fail")
	}
}

type customDisc struct{}

func (customDisc) Fit([]float64) (*transact.FittedDiscretizer, error) {
	return &transact.FittedDiscretizer{Labels: []string{"only"}}, nil
}
