package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/transact"
)

func TestRunEndToEnd(t *testing.T) {
	// Geometric scene -> Table 1 -> 47 frequent sets (printed Table 1
	// numbers; see dataset.Table2Reconstruction for the erratum).
	out, err := Run(dataset.PortoAlegreScene(), Config{
		Algorithm:  AlgApriori,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Len() != 6 {
		t.Fatalf("transactions = %d", out.Table.Len())
	}
	if got := out.Result.NumFrequent(2); got != 47 {
		t.Errorf("frequent sets = %d, want 47", got)
	}
	if out.Rules != nil {
		t.Error("rules generated without being requested")
	}
}

func TestRunKCPlusEndToEnd(t *testing.T) {
	out, err := Run(dataset.PortoAlegreScene(), Config{
		Algorithm:     AlgAprioriKCPlus,
		MinSupport:    0.5,
		GenerateRules: true,
		MinConfidence: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out.Result.Frequent {
		if f.Items.HasSameFeaturePair(out.DB.Dict) {
			t.Errorf("same-feature itemset leaked: %s", f.Items.Format(out.DB.Dict))
		}
	}
	if len(out.Rules) == 0 {
		t.Error("no rules generated")
	}
	for _, r := range out.Rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule below min confidence: %v", r.Confidence)
		}
	}
}

func TestRunTableWithDependencies(t *testing.T) {
	out, err := RunTable(dataset.Table2Reconstruction(), Config{
		Algorithm:    AlgAprioriKC,
		MinSupport:   0.5,
		Dependencies: []mining.Pair{{A: "contains_slum", B: "contains_school"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.PrunedDeps != 1 {
		t.Errorf("pruned deps = %d, want 1", out.Result.PrunedDeps)
	}
	if out.Result.PrunedSameFeature != 0 {
		t.Error("KC must not prune same-feature pairs")
	}
}

func TestRunPostFilters(t *testing.T) {
	table := dataset.Table2Reconstruction()
	all, err := RunTable(table, Config{Algorithm: AlgApriori, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := RunTable(table, Config{Algorithm: AlgApriori, MinSupport: 0.5, PostFilter: ClosedFilter})
	if err != nil {
		t.Fatal(err)
	}
	maximal, err := RunTable(table, Config{Algorithm: AlgApriori, MinSupport: 0.5, PostFilter: MaximalFilter})
	if err != nil {
		t.Fatal(err)
	}
	if !(len(maximal.Result.Frequent) <= len(closed.Result.Frequent) &&
		len(closed.Result.Frequent) <= len(all.Result.Frequent)) {
		t.Errorf("filter sizes: maximal %d, closed %d, all %d",
			len(maximal.Result.Frequent), len(closed.Result.Frequent), len(all.Result.Frequent))
	}
	// The reconstruction has exactly 2 maximal itemsets.
	if len(maximal.Result.Frequent) != 2 {
		t.Errorf("maximal = %d, want 2", len(maximal.Result.Frequent))
	}
}

func TestRunErrors(t *testing.T) {
	table := dataset.Table2Reconstruction()
	if _, err := RunTable(table, Config{Algorithm: Algorithm(9), MinSupport: 0.5}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if _, err := RunTable(table, Config{Algorithm: AlgApriori}); err == nil {
		t.Error("zero minsup should fail")
	}
	if _, err := RunTable(table, Config{Algorithm: AlgApriori, MinSupport: 0.5, PostFilter: PostFilter(9)}); err == nil {
		t.Error("unknown post filter should fail")
	}
	if _, err := Run(&dataset.Dataset{}, Config{Algorithm: AlgApriori, MinSupport: 0.5}); err == nil ||
		!strings.Contains(err.Error(), "extraction") {
		t.Error("extraction failure should be wrapped")
	}
}

func TestRunCustomExtraction(t *testing.T) {
	opts := transact.DefaultOptions()
	opts.Granularity = transact.InstanceLevel
	out, err := Run(dataset.PortoAlegreScene(), Config{
		Extraction: opts,
		Algorithm:  AlgAprioriKCPlus,
		MinSupport: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At instance granularity every spatial predicate names an instance,
	// so the closing remark of the paper applies: instance-level items
	// are never same-feature filtered.
	if out.Result.PrunedSameFeature != 0 {
		t.Errorf("instance granularity pruned %d pairs, want 0", out.Result.PrunedSameFeature)
	}
}

func TestAlgorithmStringParse(t *testing.T) {
	for _, a := range []Algorithm{AlgApriori, AlgAprioriKC, AlgAprioriKCPlus} {
		parsed, err := ParseAlgorithm(a.String())
		if err != nil || parsed != a {
			t.Errorf("round trip %v: %v, %v", a, parsed, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm must not parse")
	}
	for _, alias := range []string{"kc", "kc+", "kcplus"} {
		if _, err := ParseAlgorithm(alias); err != nil {
			t.Errorf("alias %q should parse", alias)
		}
	}
	if Algorithm(9).String() != "core.Algorithm(9)" {
		t.Error("unknown algorithm string")
	}
}

func TestFPGrowthAlgorithmMatchesKCPlus(t *testing.T) {
	table := dataset.Table2Reconstruction()
	ap, err := RunTable(table, Config{Algorithm: AlgAprioriKCPlus, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := RunTable(table, Config{Algorithm: AlgFPGrowthKCPlus, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Result.Frequent) != len(fp.Result.Frequent) {
		t.Fatalf("apriori-kc+ %d vs fpgrowth-kc+ %d itemsets",
			len(ap.Result.Frequent), len(fp.Result.Frequent))
	}
	for i := range ap.Result.Frequent {
		a, f := ap.Result.Frequent[i], fp.Result.Frequent[i]
		if !a.Items.Equal(f.Items) || a.Support != f.Support {
			t.Fatalf("result %d differs: %v/%d vs %v/%d", i, a.Items, a.Support, f.Items, f.Support)
		}
	}
	if alg, err := ParseAlgorithm("fpgrowth"); err != nil || alg != AlgFPGrowthKCPlus {
		t.Errorf("ParseAlgorithm(fpgrowth) = %v, %v", alg, err)
	}
	if AlgFPGrowthKCPlus.String() != "fpgrowth-kc+" {
		t.Error("fpgrowth algorithm name")
	}
}
