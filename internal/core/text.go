package core

import "fmt"

// MarshalText implements encoding.TextMarshaler, so an Algorithm can be
// used directly with flag.TextVar, JSON object keys, and config
// decoders. Unknown values fail rather than leak "core.Algorithm(n)".
func (a Algorithm) MarshalText() ([]byte, error) {
	switch a {
	case AlgApriori, AlgAprioriKC, AlgAprioriKCPlus, AlgFPGrowthKCPlus, AlgEclatKCPlus:
		return []byte(a.String()), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown algorithm %d", int(a))
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseAlgorithm
// (aliases like "kc+" are accepted).
func (a *Algorithm) UnmarshalText(text []byte) error {
	parsed, err := ParseAlgorithm(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// String implements fmt.Stringer.
func (p PostFilter) String() string {
	switch p {
	case NoPostFilter:
		return "none"
	case ClosedFilter:
		return "closed"
	case MaximalFilter:
		return "maximal"
	}
	return fmt.Sprintf("core.PostFilter(%d)", int(p))
}

// ParsePostFilter inverts PostFilter.String.
func ParsePostFilter(s string) (PostFilter, error) {
	switch s {
	case "none", "":
		return NoPostFilter, nil
	case "closed":
		return ClosedFilter, nil
	case "maximal":
		return MaximalFilter, nil
	}
	return 0, fmt.Errorf("core: unknown post filter %q (want none, closed, or maximal)", s)
}

// MarshalText implements encoding.TextMarshaler.
func (p PostFilter) MarshalText() ([]byte, error) {
	switch p {
	case NoPostFilter, ClosedFilter, MaximalFilter:
		return []byte(p.String()), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown post filter %d", int(p))
}

// UnmarshalText implements encoding.TextUnmarshaler via ParsePostFilter.
func (p *PostFilter) UnmarshalText(text []byte) error {
	parsed, err := ParsePostFilter(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
