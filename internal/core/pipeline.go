// Package core assembles the paper's complete system: the spatial pattern
// mining pipeline that takes a geographic dataset, extracts qualitative
// spatial predicates into a transaction table, mines frequent patterns
// with the configured algorithm (Apriori, Apriori-KC, or the paper's
// Apriori-KC+), and derives association rules.
//
// It is the integration layer over the substrate packages (geom, de9im,
// qsr, index, dataset, transact, itemset, mining) and the implementation
// behind the public qsrmine API.
package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/transact"
)

// Algorithm selects the mining variant.
type Algorithm int

// The three algorithms the paper evaluates, plus an FP-growth engine
// mining the same KC+ pattern set.
const (
	// AlgApriori is the classic baseline: no filtering.
	AlgApriori Algorithm = iota
	// AlgAprioriKC removes the background-knowledge dependency pairs Φ
	// from C2.
	AlgAprioriKC
	// AlgAprioriKCPlus additionally removes every candidate pair whose
	// predicates share a feature type — the paper's contribution.
	AlgAprioriKCPlus
	// AlgFPGrowthKCPlus mines the Apriori-KC+ pattern set with the
	// FP-growth engine (independent implementation, faster on dense
	// low-support workloads).
	AlgFPGrowthKCPlus
	// AlgEclatKCPlus mines the Apriori-KC+ pattern set with the vertical
	// Eclat engine (tidset intersection with dEclat diffset switching).
	AlgEclatKCPlus
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgApriori:
		return "apriori"
	case AlgAprioriKC:
		return "apriori-kc"
	case AlgAprioriKCPlus:
		return "apriori-kc+"
	case AlgFPGrowthKCPlus:
		return "fpgrowth-kc+"
	case AlgEclatKCPlus:
		return "eclat-kc+"
	}
	return fmt.Sprintf("core.Algorithm(%d)", int(a))
}

// ParseAlgorithm inverts Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "apriori":
		return AlgApriori, nil
	case "apriori-kc", "kc":
		return AlgAprioriKC, nil
	case "apriori-kc+", "kc+", "kcplus":
		return AlgAprioriKCPlus, nil
	case "fpgrowth-kc+", "fpgrowth":
		return AlgFPGrowthKCPlus, nil
	case "eclat-kc+", "eclat":
		return AlgEclatKCPlus, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want apriori, apriori-kc, apriori-kc+, fpgrowth-kc+, or eclat-kc+)", s)
}

// Config parameterises a full pipeline run.
type Config struct {
	// Extraction configures the predicate extraction; zero value uses
	// transact.DefaultOptions.
	Extraction transact.Options
	// Algorithm picks the miner.
	Algorithm Algorithm
	// MinSupport is the relative minimum support in (0, 1].
	MinSupport float64
	// Dependencies is the background knowledge Φ (used by KC and KC+).
	Dependencies []mining.Pair
	// Counting selects the support-counting strategy of the Apriori
	// engines (the Eclat engine is vertical by construction and rejects
	// an explicit HorizontalCounting; FP-growth ignores it).
	Counting mining.CountingStrategy
	// Parallelism bounds the mining fan-out (vertical counting workers,
	// Eclat walk workers): 1 or negative is sequential, 0 uses
	// GOMAXPROCS. Results are identical at any setting.
	Parallelism int
	// MinConfidence gates rule generation; rules are skipped when 0 and
	// GenerateRules is false.
	MinConfidence float64
	// GenerateRules enables the association-rule stage.
	GenerateRules bool
	// PostFilter applies an optional redundancy post-filter.
	PostFilter PostFilter
}

// PostFilter selects the optional redundancy elimination applied after
// mining — the paper's future-work direction.
type PostFilter int

// Post filters.
const (
	// NoPostFilter keeps all frequent itemsets.
	NoPostFilter PostFilter = iota
	// ClosedFilter keeps only closed itemsets.
	ClosedFilter
	// MaximalFilter keeps only maximal itemsets.
	MaximalFilter
)

// Outcome bundles everything a pipeline run produces.
type Outcome struct {
	// Table is the extracted (or supplied) transaction table.
	Table *dataset.Table
	// DB is the interned mining database (exposes the dictionary).
	DB *itemset.DB
	// Result is the mining result with pass statistics.
	Result *mining.Result
	// Rules holds the generated association rules (nil unless enabled).
	Rules []mining.Rule
}

// Run executes the full pipeline on a geographic dataset. It is
// RunContext with a background context, kept for callers that need
// neither cancellation nor tracing.
func Run(d *dataset.Dataset, cfg Config) (*Outcome, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext executes the full pipeline on a geographic dataset,
// honouring ctx cancellation/deadlines in every stage and emitting stage
// spans and mining pass events to any obs.Trace attached to ctx (see
// obs.WithTrace).
//
// A zero cfg.Extraction — and only the exact zero value — is replaced by
// transact.DefaultOptions. Any deliberately non-zero Options with all
// relation families off performs attributes-only extraction.
func RunContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Outcome, error) {
	opts := cfg.Extraction
	if opts.IsZero() {
		opts = transact.DefaultOptions()
	}
	tr := obs.FromContext(ctx)
	sp := tr.Stage("extract")
	table, err := transact.ExtractContext(ctx, d, opts)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: extraction: %w", err)
	}
	return RunTableContext(ctx, table, cfg)
}

// EffectiveMiningConfig resolves the mining.Config that cfg's algorithm
// actually mines with. The named algorithm wrappers override the filter
// flags — plain Apriori ignores both Φ and same-feature filtering,
// Apriori-KC applies only Φ, and every KC+ engine forces same-feature
// filtering on — so any code that re-derives or patches a result (the
// delta mining path in particular) must use these effective semantics,
// not the raw request config.
func EffectiveMiningConfig(cfg Config) (mining.Config, error) {
	mcfg := mining.Config{
		MinSupport:   cfg.MinSupport,
		Dependencies: cfg.Dependencies,
		Counting:     cfg.Counting,
		Parallelism:  cfg.Parallelism,
	}
	switch cfg.Algorithm {
	case AlgApriori:
		mcfg.Dependencies = nil
	case AlgAprioriKC:
	case AlgAprioriKCPlus, AlgFPGrowthKCPlus, AlgEclatKCPlus:
		mcfg.FilterSameFeature = true
	default:
		return mining.Config{}, fmt.Errorf("core: unknown algorithm %d", cfg.Algorithm)
	}
	return mcfg, nil
}

// RunTable executes the mining stages on an existing transaction table
// (e.g. one loaded from disk or produced by a generator). It is
// RunTableContext with a background context.
func RunTable(table *dataset.Table, cfg Config) (*Outcome, error) {
	return RunTableContext(context.Background(), table, cfg)
}

// RunTableContext executes the mining stages on an existing transaction
// table, honouring ctx cancellation/deadlines between (and inside)
// mining passes and emitting stage spans and pass events to any
// obs.Trace attached to ctx. A cancelled run returns ctx.Err()
// (context.Canceled or context.DeadlineExceeded), unwrappable with
// errors.Is through the "core: mining:" wrapping.
func RunTableContext(ctx context.Context, table *dataset.Table, cfg Config) (*Outcome, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Stage("intern")
	db := itemset.NewDB(table)
	sp.End()
	mcfg, err := EffectiveMiningConfig(cfg)
	if err != nil {
		return nil, err
	}
	var res *mining.Result
	sp = tr.Stage("mine")
	switch cfg.Algorithm {
	case AlgApriori, AlgAprioriKC, AlgAprioriKCPlus:
		res, err = mining.MineContext(ctx, db, mcfg)
	case AlgFPGrowthKCPlus:
		res, err = mining.FPGrowthContext(ctx, db, mcfg)
	case AlgEclatKCPlus:
		res, err = mining.EclatContext(ctx, db, mcfg)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: mining: %w", err)
	}
	sp = tr.Stage("postfilter")
	switch cfg.PostFilter {
	case NoPostFilter:
	case ClosedFilter:
		res.Frequent = mining.ClosedOnly(res.Frequent)
	case MaximalFilter:
		res.Frequent = mining.MaximalOnly(res.Frequent)
	default:
		sp.End()
		return nil, fmt.Errorf("core: unknown post filter %d", cfg.PostFilter)
	}
	sp.End()
	out := &Outcome{Table: table, DB: db, Result: res}
	if cfg.GenerateRules {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp = tr.Stage("rules")
		out.Rules = mining.GenerateRules(res, cfg.MinConfidence)
		sp.End()
	}
	return out, nil
}
