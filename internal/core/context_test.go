package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/transact"
)

// TestRunDefaultsOnlyZeroExtraction is the regression test for the
// defaulting bug: a deliberately non-zero Extraction with all relation
// families off must NOT be replaced with DefaultOptions — it performs
// attributes-only extraction.
func TestRunDefaultsOnlyZeroExtraction(t *testing.T) {
	scene := dataset.PortoAlegreScene()

	// Zero value: still defaulted to topological extraction.
	defaulted, err := Run(scene, Config{Algorithm: AlgApriori, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	spatial := 0
	for _, tx := range defaulted.Table.Transactions {
		for _, it := range tx.Items {
			if strings.Contains(it, "_") && !strings.Contains(it, "=") {
				spatial++
			}
		}
	}
	if spatial == 0 {
		t.Fatal("zero Extraction must still default to topological predicates")
	}

	// Non-zero, all families off: attributes-only extraction.
	out, err := Run(scene, Config{
		Extraction: transact.Options{IncludeIsA: true},
		Algorithm:  AlgApriori,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatalf("attributes-only extraction must be reachable: %v", err)
	}
	for _, tx := range out.Table.Transactions {
		hasIsA := false
		for _, it := range tx.Items {
			if it == "is_a_district" {
				hasIsA = true
			}
			if strings.HasPrefix(it, "contains_") || strings.HasPrefix(it, "touches_") ||
				strings.HasPrefix(it, "crosses_") || strings.HasPrefix(it, "within_") {
				t.Fatalf("spatial predicate %q leaked into attributes-only extraction", it)
			}
		}
		if !hasIsA {
			t.Errorf("transaction %s missing is_a item: %v", tx.RefID, tx.Items)
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, dataset.PortoAlegreScene(), Config{
		Algorithm: AlgApriori, MinSupport: 0.5,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunContext err = %v, want context.Canceled", err)
	}
	if _, err := RunTableContext(ctx, dataset.Table2Reconstruction(), Config{
		Algorithm: AlgApriori, MinSupport: 0.5,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunTableContext err = %v, want context.Canceled", err)
	}
}

// cancelOnPass is a Sink cancelling a context at the first mining pass —
// it drives the deterministic "cancel between passes" test.
type cancelOnPass struct {
	cancel context.CancelFunc
}

func (s *cancelOnPass) Emit(e obs.Event) {
	if e.Kind == obs.KindPass {
		s.cancel()
	}
}

func TestRunTableContextCancelBetweenPasses(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := obs.New(&cancelOnPass{cancel: cancel})
	out, err := RunTableContext(obs.WithTrace(ctx, tr), dataset.Table2Reconstruction(), Config{
		Algorithm: AlgAprioriKCPlus, MinSupport: 0.5,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("cancelled run must not return a partial outcome")
	}
}

func TestRunTableContextEmitsStages(t *testing.T) {
	c := obs.NewCollector()
	ctx := obs.WithTrace(context.Background(), obs.New(c))
	if _, err := RunTableContext(ctx, dataset.Table2Reconstruction(), Config{
		Algorithm: AlgAprioriKCPlus, MinSupport: 0.5, GenerateRules: true, MinConfidence: 0.7,
	}); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range c.Stages() {
		names = append(names, s.Name)
	}
	want := []string{"intern", "mine", "postfilter", "rules"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
	passes := c.Passes()
	if len(passes) == 0 {
		t.Fatal("no pass events emitted")
	}
	if passes[0].K != 1 || passes[0].Frequent == 0 {
		t.Errorf("pass 1 = %+v", passes[0])
	}
	foundPrune := false
	for _, p := range passes {
		if p.K == 2 && p.PrunedSameFeature > 0 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Error("KC+ run emitted no same-feature prune counts at k=2")
	}
}

func TestAlgorithmTextRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgApriori, AlgAprioriKC, AlgAprioriKCPlus, AlgFPGrowthKCPlus} {
		text, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Algorithm
		if err := back.UnmarshalText(text); err != nil || back != a {
			t.Errorf("round trip %v: %v, %v", a, back, err)
		}
	}
	if _, err := Algorithm(99).MarshalText(); err == nil {
		t.Error("unknown algorithm must not marshal")
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown algorithm must not unmarshal")
	}
	if err := a.UnmarshalText([]byte("kc+")); err != nil || a != AlgAprioriKCPlus {
		t.Error("alias must unmarshal")
	}
}

func TestPostFilterTextRoundTrip(t *testing.T) {
	for _, p := range []PostFilter{NoPostFilter, ClosedFilter, MaximalFilter} {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back PostFilter
		if err := back.UnmarshalText(text); err != nil || back != p {
			t.Errorf("round trip %v: %v, %v", p, back, err)
		}
		if parsed, err := ParsePostFilter(p.String()); err != nil || parsed != p {
			t.Errorf("parse %v: %v, %v", p, parsed, err)
		}
	}
	if _, err := PostFilter(9).MarshalText(); err == nil {
		t.Error("unknown post filter must not marshal")
	}
	if PostFilter(9).String() != "core.PostFilter(9)" {
		t.Error("unknown post filter string")
	}
	if _, err := ParsePostFilter("bogus"); err == nil {
		t.Error("unknown post filter must not parse")
	}
	if p, err := ParsePostFilter(""); err != nil || p != NoPostFilter {
		t.Error("empty post filter must parse as none")
	}
}
