package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/mining"
	"repro/internal/qsr"
	"repro/internal/transact"
)

// This file defines the JSON form of Config — the request-body contract
// of the qsrmined HTTP service and a stable on-disk format for saved run
// configurations. Every field round-trips; the enum fields (algorithm,
// post filter, counting strategy, granularity, index) are spelled with
// their canonical names via the types' TextMarshalers, and unknown names
// or unknown JSON keys are rejected with a descriptive error rather than
// silently ignored.

// jsonConfig is the wire form of Config. Pointer/omitempty fields keep
// the canonical encoding minimal, which matters because the server's
// result cache keys on the marshaled bytes.
type jsonConfig struct {
	Algorithm     Algorithm               `json:"algorithm"`
	MinSupport    float64                 `json:"minSupport"`
	Dependencies  []jsonPair              `json:"dependencies,omitempty"`
	Counting      mining.CountingStrategy `json:"counting,omitempty"`
	Parallelism   int                     `json:"parallelism,omitempty"`
	MinConfidence float64                 `json:"minConfidence,omitempty"`
	GenerateRules bool                    `json:"generateRules,omitempty"`
	PostFilter    PostFilter              `json:"postFilter,omitempty"`
	Extraction    *jsonExtraction         `json:"extraction,omitempty"`
}

// jsonPair spells one Φ dependency pair.
type jsonPair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// jsonExtraction is the wire form of transact.Options.
type jsonExtraction struct {
	Topological     bool                 `json:"topological,omitempty"`
	IncludeDisjoint bool                 `json:"includeDisjoint,omitempty"`
	Distance        bool                 `json:"distance,omitempty"`
	Thresholds      *jsonThresholds      `json:"thresholds,omitempty"`
	IncludeFarFrom  bool                 `json:"includeFarFrom,omitempty"`
	Directional     bool                 `json:"directional,omitempty"`
	IncludeIsA      bool                 `json:"includeIsA,omitempty"`
	Granularity     transact.Granularity `json:"granularity,omitempty"`
	Index           transact.IndexKind   `json:"index,omitempty"`
	Discretizer     *jsonDiscretizer     `json:"discretizer,omitempty"`
	Parallelism     int                  `json:"parallelism,omitempty"`
}

// jsonThresholds spells qsr.DistanceThresholds.
type jsonThresholds struct {
	VeryCloseMax float64 `json:"veryCloseMax"`
	CloseMax     float64 `json:"closeMax"`
}

// jsonDiscretizer spells the supported transact.Discretizer
// implementations by kind. Cuts/Labels apply to "thresholds" only.
type jsonDiscretizer struct {
	Kind   string    `json:"kind"`
	Bins   int       `json:"bins,omitempty"`
	Cuts   []float64 `json:"cuts,omitempty"`
	Labels []string  `json:"labels,omitempty"`
}

// MarshalJSON implements json.Marshaler. The encoding is deterministic:
// equal Configs marshal to byte-identical JSON (the server's result-cache
// key relies on this). A Config holding a custom Discretizer
// implementation cannot be represented and returns an error.
func (c Config) MarshalJSON() ([]byte, error) {
	jc := jsonConfig{
		Algorithm:     c.Algorithm,
		MinSupport:    c.MinSupport,
		Counting:      c.Counting,
		Parallelism:   c.Parallelism,
		MinConfidence: c.MinConfidence,
		GenerateRules: c.GenerateRules,
		PostFilter:    c.PostFilter,
	}
	for _, p := range c.Dependencies {
		jc.Dependencies = append(jc.Dependencies, jsonPair{A: p.A, B: p.B})
	}
	if !c.Extraction.IsZero() {
		je, err := extractionToJSON(c.Extraction)
		if err != nil {
			return nil, err
		}
		jc.Extraction = je
	}
	return json.Marshal(jc)
}

// UnmarshalJSON implements json.Unmarshaler. Unknown JSON keys and
// unknown enum spellings are rejected with a descriptive error — this is
// a network-facing contract, and a typoed "algoritm" must not silently
// mine with the zero-value default.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jc jsonConfig
	if err := dec.Decode(&jc); err != nil {
		return fmt.Errorf("core: decoding config: %w", err)
	}
	out := Config{
		Algorithm:     jc.Algorithm,
		MinSupport:    jc.MinSupport,
		Counting:      jc.Counting,
		Parallelism:   jc.Parallelism,
		MinConfidence: jc.MinConfidence,
		GenerateRules: jc.GenerateRules,
		PostFilter:    jc.PostFilter,
	}
	for _, p := range jc.Dependencies {
		if p.A == "" || p.B == "" {
			return fmt.Errorf("core: decoding config: dependency pair needs both %q and %q item names", "a", "b")
		}
		out.Dependencies = append(out.Dependencies, mining.Pair{A: p.A, B: p.B})
	}
	if jc.Extraction != nil {
		opts, err := extractionFromJSON(jc.Extraction)
		if err != nil {
			return fmt.Errorf("core: decoding config: %w", err)
		}
		out.Extraction = opts
	}
	*c = out
	return nil
}

// extractionToJSON converts transact.Options to the wire form.
func extractionToJSON(o transact.Options) (*jsonExtraction, error) {
	je := &jsonExtraction{
		Topological:     o.Topological,
		IncludeDisjoint: o.IncludeDisjoint,
		Distance:        o.Distance,
		IncludeFarFrom:  o.IncludeFarFrom,
		Directional:     o.Directional,
		IncludeIsA:      o.IncludeIsA,
		Granularity:     o.Granularity,
		Index:           o.Index,
		Parallelism:     o.Parallelism,
	}
	if o.Thresholds != (qsr.DistanceThresholds{}) {
		je.Thresholds = &jsonThresholds{VeryCloseMax: o.Thresholds.VeryCloseMax, CloseMax: o.Thresholds.CloseMax}
	}
	if o.Discretizer != nil {
		jd, err := discretizerToJSON(o.Discretizer)
		if err != nil {
			return nil, err
		}
		je.Discretizer = jd
	}
	return je, nil
}

// extractionFromJSON converts the wire form back to transact.Options.
func extractionFromJSON(je *jsonExtraction) (transact.Options, error) {
	o := transact.Options{
		Topological:     je.Topological,
		IncludeDisjoint: je.IncludeDisjoint,
		Distance:        je.Distance,
		IncludeFarFrom:  je.IncludeFarFrom,
		Directional:     je.Directional,
		IncludeIsA:      je.IncludeIsA,
		Granularity:     je.Granularity,
		Index:           je.Index,
		Parallelism:     je.Parallelism,
	}
	if je.Thresholds != nil {
		o.Thresholds = qsr.DistanceThresholds{VeryCloseMax: je.Thresholds.VeryCloseMax, CloseMax: je.Thresholds.CloseMax}
	}
	if je.Discretizer != nil {
		d, err := discretizerFromJSON(je.Discretizer)
		if err != nil {
			return transact.Options{}, err
		}
		o.Discretizer = d
	}
	return o, nil
}

// discretizerToJSON spells the built-in discretizers; a custom
// implementation has no wire form.
func discretizerToJSON(d transact.Discretizer) (*jsonDiscretizer, error) {
	switch t := d.(type) {
	case transact.EqualWidth:
		return &jsonDiscretizer{Kind: "equalWidth", Bins: t.Bins}, nil
	case transact.EqualFrequency:
		return &jsonDiscretizer{Kind: "equalFrequency", Bins: t.Bins}, nil
	case transact.Thresholds:
		return &jsonDiscretizer{Kind: "thresholds", Cuts: t.Cuts, Labels: t.Labels}, nil
	}
	return nil, fmt.Errorf("core: cannot marshal custom discretizer %T to JSON", d)
}

// discretizerFromJSON inverts discretizerToJSON.
func discretizerFromJSON(jd *jsonDiscretizer) (transact.Discretizer, error) {
	switch jd.Kind {
	case "equalWidth":
		return transact.EqualWidth{Bins: jd.Bins}, nil
	case "equalFrequency":
		return transact.EqualFrequency{Bins: jd.Bins}, nil
	case "thresholds":
		return transact.Thresholds{Cuts: jd.Cuts, Labels: jd.Labels}, nil
	}
	return nil, fmt.Errorf("core: unknown discretizer kind %q (want equalWidth, equalFrequency, or thresholds)", jd.Kind)
}
