package geom

import (
	"strings"
	"testing"
)

func TestWKTRoundTrip(t *testing.T) {
	cases := []Geometry{
		Pt(1, 2),
		Pt(-1.5, 2.25),
		MultiPoint{Points: []Point{Pt(0, 0), Pt(3, 4)}},
		Line(Pt(0, 0), Pt(1, 1), Pt(2, 0)),
		MultiLineString{Lines: []LineString{
			Line(Pt(0, 0), Pt(1, 0)),
			Line(Pt(0, 1), Pt(1, 1), Pt(2, 2)),
		}},
		Rect(0, 0, 4, 4),
		Polygon{
			Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
			Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4)}}},
		},
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)}},
	}
	for _, g := range cases {
		wkt := g.WKT()
		parsed, err := ParseWKT(wkt)
		if err != nil {
			t.Errorf("%s: parse error: %v", wkt, err)
			continue
		}
		if parsed.WKT() != wkt {
			t.Errorf("round trip mismatch:\n  in:  %s\n  out: %s", wkt, parsed.WKT())
		}
		if parsed.GeomType() != g.GeomType() {
			t.Errorf("%s: type changed to %s", wkt, parsed.GeomType())
		}
	}
}

func TestWKTExactStrings(t *testing.T) {
	cases := []struct {
		g    Geometry
		want string
	}{
		{Pt(1, 2), "POINT (1 2)"},
		{Line(Pt(0, 0), Pt(1, 1)), "LINESTRING (0 0, 1 1)"},
		{Rect(0, 0, 1, 1), "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"},
		{MultiPoint{}, "MULTIPOINT EMPTY"},
		{LineString{}, "LINESTRING EMPTY"},
		{Polygon{}, "POLYGON EMPTY"},
		{MultiPolygon{}, "MULTIPOLYGON EMPTY"},
		{MultiLineString{}, "MULTILINESTRING EMPTY"},
	}
	for _, tc := range cases {
		if got := tc.g.WKT(); got != tc.want {
			t.Errorf("WKT = %q, want %q", got, tc.want)
		}
	}
}

func TestParseWKTVariants(t *testing.T) {
	// Multipoint without per-point parentheses.
	g, err := ParseWKT("MULTIPOINT (1 1, 2 2)")
	if err != nil {
		t.Fatal(err)
	}
	if mp := g.(MultiPoint); len(mp.Points) != 2 || !mp.Points[1].Equal(Pt(2, 2)) {
		t.Errorf("bare multipoint = %+v", mp)
	}
	// Lower-case keyword, extra whitespace, scientific notation.
	g, err = ParseWKT("  point\t( 1e1   -2.5 ) ")
	if err != nil {
		t.Fatal(err)
	}
	if p := g.(Point); !p.Equal(Pt(10, -2.5)) {
		t.Errorf("parsed point = %v", p)
	}
	// Polygon with explicit closing coordinate keeps an open ring inside.
	g, err = ParseWKT("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	if poly := g.(Polygon); len(poly.Shell.Coords) != 4 {
		t.Errorf("closing coordinate not stripped: %d coords", len(poly.Shell.Coords))
	}
	// POINT EMPTY parses (as an empty multipoint, our empty-point stand-in).
	g, err = ParseWKT("POINT EMPTY")
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEmpty() {
		t.Error("POINT EMPTY should be empty")
	}
}

func TestParseWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (0 0, 1)",
		"POINT (1)",
		"POINT (1 2",
		"POINT 1 2",
		"LINESTRING ((0 0, 1 1)",
		"POLYGON (0 0, 1 1)",
		"POINT (a b)",
		"POINT (1 2, 3 4)",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) should fail", s)
		} else if !strings.Contains(err.Error(), "geom: parsing WKT") {
			t.Errorf("error not wrapped: %v", err)
		}
	}
}

func TestMustParseWKT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseWKT should panic on bad input")
		}
	}()
	g := MustParseWKT("POINT (3 4)")
	if !g.(Point).Equal(Pt(3, 4)) {
		t.Error("MustParseWKT wrong result")
	}
	MustParseWKT("NOPE")
}
