package geom

import (
	"math"
	"sort"
)

// ConvexHull returns the convex hull of the input points as a
// counterclockwise ring (Andrew's monotone chain). Degenerate inputs
// (fewer than 3 distinct non-collinear points) return a ring with fewer
// than 3 coordinates; callers needing an area should check NumSegments.
func ConvexHull(points []Point) Ring {
	pts := dedupePoints(points)
	if len(pts) < 3 {
		return Ring{Coords: pts}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	// Lower hull.
	var lower []Point
	for _, p := range pts {
		for len(lower) >= 2 && Orientation(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	// Upper hull.
	var upper []Point
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && Orientation(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	// Concatenate, dropping the duplicated endpoints.
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Ring{Coords: hull}
}

// dedupePoints removes exact duplicates, preserving first occurrence.
func dedupePoints(points []Point) []Point {
	seen := make(map[Point]struct{}, len(points))
	out := make([]Point, 0, len(points))
	for _, p := range points {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// Simplify reduces a linestring with the Douglas-Peucker algorithm: the
// result deviates from the input by at most tolerance. Endpoints are
// always kept.
func Simplify(l LineString, tolerance float64) LineString {
	if len(l.Coords) <= 2 || tolerance <= 0 {
		return LineString{Coords: append([]Point{}, l.Coords...)}
	}
	keep := make([]bool, len(l.Coords))
	keep[0], keep[len(l.Coords)-1] = true, true
	douglasPeucker(l.Coords, 0, len(l.Coords)-1, tolerance, keep)
	out := make([]Point, 0, len(l.Coords))
	for i, k := range keep {
		if k {
			out = append(out, l.Coords[i])
		}
	}
	return LineString{Coords: out}
}

// douglasPeucker marks the points to keep between indices lo and hi.
func douglasPeucker(coords []Point, lo, hi int, tol float64, keep []bool) {
	if hi <= lo+1 {
		return
	}
	seg := Segment{coords[lo], coords[hi]}
	worst, worstDist := -1, tol
	for i := lo + 1; i < hi; i++ {
		if d := seg.DistanceToPoint(coords[i]); d > worstDist {
			worst, worstDist = i, d
		}
	}
	if worst < 0 {
		return
	}
	keep[worst] = true
	douglasPeucker(coords, lo, worst, tol, keep)
	douglasPeucker(coords, worst, hi, tol, keep)
}

// SimplifyRing applies Douglas-Peucker to a ring, keeping at least a
// triangle. The vertex with the lowest index is treated as both endpoints.
func SimplifyRing(r Ring, tolerance float64) Ring {
	if len(r.Coords) <= 4 || tolerance <= 0 {
		return Ring{Coords: append([]Point{}, r.Coords...)}
	}
	closed := append(append([]Point{}, r.Coords...), r.Coords[0])
	simplified := Simplify(LineString{Coords: closed}, tolerance).Coords
	simplified = simplified[:len(simplified)-1] // drop the closing copy
	if len(simplified) < 3 {
		return Ring{Coords: append([]Point{}, r.Coords...)}
	}
	return Ring{Coords: simplified}
}

// Affine is a 2-D affine transform: x' = A·x + b, row-major
// [XX XY; YX YY] with translation (TX, TY).
type Affine struct {
	XX, XY, YX, YY float64
	TX, TY         float64
}

// IdentityAffine returns the identity transform.
func IdentityAffine() Affine { return Affine{XX: 1, YY: 1} }

// TranslateAffine returns a pure translation.
func TranslateAffine(dx, dy float64) Affine { return Affine{XX: 1, YY: 1, TX: dx, TY: dy} }

// ScaleAffine returns a scaling about the origin.
func ScaleAffine(sx, sy float64) Affine { return Affine{XX: sx, YY: sy} }

// RotateAffine returns a counterclockwise rotation by theta radians about
// the origin.
func RotateAffine(theta float64) Affine {
	s, c := math.Sincos(theta)
	return Affine{XX: c, XY: -s, YX: s, YY: c}
}

// RotateAround returns a rotation about an arbitrary center: translate
// the center to the origin, rotate, translate back.
func RotateAround(theta float64, center Point) Affine {
	return TranslateAffine(-center.X, -center.Y).
		Then(RotateAffine(theta)).
		Then(TranslateAffine(center.X, center.Y))
}

// Then returns the transform that applies t first, then next.
func (t Affine) Then(next Affine) Affine { return next.compose(t) }

// compose returns t ∘ o (apply o first).
func (t Affine) compose(o Affine) Affine {
	return Affine{
		XX: t.XX*o.XX + t.XY*o.YX,
		XY: t.XX*o.XY + t.XY*o.YY,
		YX: t.YX*o.XX + t.YY*o.YX,
		YY: t.YX*o.XY + t.YY*o.YY,
		TX: t.XX*o.TX + t.XY*o.TY + t.TX,
		TY: t.YX*o.TX + t.YY*o.TY + t.TY,
	}
}

// Apply transforms a point.
func (t Affine) Apply(p Point) Point {
	return Point{
		X: t.XX*p.X + t.XY*p.Y + t.TX,
		Y: t.YX*p.X + t.YY*p.Y + t.TY,
	}
}

// Transform applies the affine map to any geometry, returning a new
// geometry sharing no storage with the input.
func Transform(g Geometry, t Affine) Geometry {
	mapPts := func(ps []Point) []Point {
		out := make([]Point, len(ps))
		for i, p := range ps {
			out[i] = t.Apply(p)
		}
		return out
	}
	switch v := g.(type) {
	case Point:
		return t.Apply(v)
	case MultiPoint:
		return MultiPoint{Points: mapPts(v.Points)}
	case LineString:
		return LineString{Coords: mapPts(v.Coords)}
	case MultiLineString:
		lines := make([]LineString, len(v.Lines))
		for i, l := range v.Lines {
			lines[i] = LineString{Coords: mapPts(l.Coords)}
		}
		return MultiLineString{Lines: lines}
	case Polygon:
		holes := make([]Ring, len(v.Holes))
		for i, h := range v.Holes {
			holes[i] = Ring{Coords: mapPts(h.Coords)}
		}
		return Polygon{Shell: Ring{Coords: mapPts(v.Shell.Coords)}, Holes: holes}
	case MultiPolygon:
		polys := make([]Polygon, len(v.Polygons))
		for i, p := range v.Polygons {
			polys[i] = Transform(p, t).(Polygon)
		}
		return MultiPolygon{Polygons: polys}
	}
	panic("geom: unknown geometry type")
}
