package geom

import (
	"errors"
	"math"
	"testing"
)

func TestValidateOK(t *testing.T) {
	good := []Geometry{
		Pt(1, 2),
		MultiPoint{Points: []Point{Pt(0, 0), Pt(1, 1)}},
		Line(Pt(0, 0), Pt(1, 1), Pt(2, 0)),
		MultiLineString{Lines: []LineString{Line(Pt(0, 0), Pt(1, 0))}},
		Rect(0, 0, 4, 4),
		Polygon{
			Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
			Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4)}}},
		},
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(3, 3, 4, 4)}},
	}
	for _, g := range good {
		if err := Validate(g); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", g.WKT(), err)
		}
	}
}

func TestValidateTooFewCoords(t *testing.T) {
	cases := []Geometry{
		LineString{Coords: []Point{Pt(0, 0)}},
		Polygon{Shell: Ring{Coords: []Point{Pt(0, 0), Pt(1, 1)}}},
	}
	for _, g := range cases {
		if err := Validate(g); !errors.Is(err, ErrTooFewCoords) {
			t.Errorf("Validate = %v, want ErrTooFewCoords", err)
		}
	}
}

func TestValidateNonFinite(t *testing.T) {
	nan := math.NaN()
	if err := Validate(Pt(nan, 0)); !errors.Is(err, ErrNonFiniteCoord) {
		t.Errorf("NaN point: %v", err)
	}
	if err := Validate(Line(Pt(0, 0), Pt(math.Inf(1), 0))); !errors.Is(err, ErrNonFiniteCoord) {
		t.Errorf("Inf line: %v", err)
	}
}

func TestValidateRepeatedCoord(t *testing.T) {
	if err := Validate(Line(Pt(0, 0), Pt(0, 0), Pt(1, 1))); !errors.Is(err, ErrRepeatedCoord) {
		t.Errorf("repeated line coord: %v", err)
	}
	bowtieDegenerate := Poly(Pt(0, 0), Pt(0, 0), Pt(1, 1))
	if err := Validate(bowtieDegenerate); !errors.Is(err, ErrRepeatedCoord) {
		t.Errorf("degenerate ring edge: %v", err)
	}
}

func TestValidateSelfIntersectingRing(t *testing.T) {
	// Bowtie: edges cross in the middle.
	bowtie := Poly(Pt(0, 0), Pt(4, 4), Pt(4, 0), Pt(0, 4))
	if err := Validate(bowtie); !errors.Is(err, ErrRingNotSimple) {
		t.Errorf("bowtie: %v, want ErrRingNotSimple", err)
	}
	// Ring with a spike (collinear overlap).
	spike := Poly(Pt(0, 0), Pt(4, 0), Pt(2, 0), Pt(2, 3))
	if err := Validate(spike); !errors.Is(err, ErrRingNotSimple) {
		t.Errorf("spike: %v, want ErrRingNotSimple", err)
	}
}

func TestValidateHoleOutside(t *testing.T) {
	poly := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}},
		Holes: []Ring{{Coords: []Point{Pt(10, 10), Pt(12, 10), Pt(12, 12), Pt(10, 12)}}},
	}
	if err := Validate(poly); !errors.Is(err, ErrHoleOutside) {
		t.Errorf("outside hole: %v, want ErrHoleOutside", err)
	}
}

func TestValidateWrappedContext(t *testing.T) {
	// Errors from nested parts must carry positional context.
	mp := MultiPolygon{Polygons: []Polygon{
		Rect(0, 0, 1, 1),
		{Shell: Ring{Coords: []Point{Pt(0, 0), Pt(1, 1)}}},
	}}
	err := Validate(mp)
	if err == nil || !errors.Is(err, ErrTooFewCoords) {
		t.Fatalf("err = %v", err)
	}
	ml := MultiLineString{Lines: []LineString{
		Line(Pt(0, 0), Pt(1, 1)),
		{Coords: []Point{Pt(0, 0)}},
	}}
	if err := Validate(ml); !errors.Is(err, ErrTooFewCoords) {
		t.Fatalf("multiline err = %v", err)
	}
}
