package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClipOverlappingSquares(t *testing.T) {
	subject := Rect(0, 0, 4, 4)
	clip := Rect(2, 2, 6, 6)
	out := ClipToConvex(subject.Shell, clip.Shell)
	if got := out.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("clip area = %v, want 4", got)
	}
}

func TestClipContainment(t *testing.T) {
	// Subject inside clip: unchanged area.
	subject := Rect(1, 1, 3, 3)
	clip := Rect(0, 0, 10, 10)
	out := ClipToConvex(subject.Shell, clip.Shell)
	if got := out.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("contained clip area = %v, want 4", got)
	}
	// Clip inside subject: clip's area.
	out = ClipToConvex(clip.Shell, subject.Shell)
	if got := out.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("covering clip area = %v, want 4", got)
	}
}

func TestClipDisjoint(t *testing.T) {
	out := ClipToConvex(Rect(0, 0, 1, 1).Shell, Rect(5, 5, 6, 6).Shell)
	if len(out.Coords) != 0 {
		t.Errorf("disjoint clip = %v", out.Coords)
	}
}

func TestClipDegenerate(t *testing.T) {
	if out := ClipToConvex(Ring{}, Rect(0, 0, 1, 1).Shell); len(out.Coords) != 0 {
		t.Error("empty subject")
	}
	if out := ClipToConvex(Rect(0, 0, 1, 1).Shell, Ring{}); len(out.Coords) != 0 {
		t.Error("empty clip")
	}
}

func TestClipClockwiseClipRing(t *testing.T) {
	// A clockwise clip ring must be handled by normalisation.
	cw := Ring{Coords: []Point{Pt(2, 2), Pt(2, 6), Pt(6, 6), Pt(6, 2)}}
	out := ClipToConvex(Rect(0, 0, 4, 4).Shell, cw)
	if got := out.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("cw clip area = %v, want 4", got)
	}
}

func TestClipTriangleAgainstSquare(t *testing.T) {
	// Triangle poking out of the right side of the square.
	tri := Poly(Pt(2, 1), Pt(8, 3), Pt(2, 5))
	clip := Rect(0, 0, 4, 6)
	out := ClipToConvex(tri.Shell, clip.Shell)
	// Exact area by shoelace of the clipped shape: the triangle has
	// vertices (2,1),(8,3),(2,5); the clip line x=4 cuts it at
	// (4, 1.6666...) and (4, 4.3333...). Area = full (12) minus the cut
	// tip, a triangle with base |4.3333-1.6666| = 2.6667 at x=4 and apex
	// (8,3): area = 0.5*2.6667*4 = 5.3333. Remaining = 6.6667.
	want := 12.0 - 0.5*(8.0/3.0)*4.0
	if got := out.Area(); math.Abs(got-want) > 1e-6 {
		t.Errorf("triangle clip area = %v, want %v", got, want)
	}
}

func TestIntersectionAreaWithHole(t *testing.T) {
	donut := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(6, 2), Pt(6, 6), Pt(2, 6)}}},
	}
	clip := Rect(0, 0, 6, 6)
	// Clip region is 36; hole ∩ clip is 16 -> 20.
	if got := IntersectionArea(donut, clip); math.Abs(got-20) > 1e-9 {
		t.Errorf("holed intersection area = %v, want 20", got)
	}
}

func TestIntersectionAreaPanicsOnHoledClip(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("holed clip should panic")
		}
	}()
	holed := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}},
		Holes: []Ring{{Coords: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}}},
	}
	IntersectionArea(Rect(0, 0, 1, 1), holed)
}

func TestOverlapFraction(t *testing.T) {
	// Half of the subject inside the clip.
	subject := Rect(0, 0, 4, 2)
	clip := Rect(2, 0, 10, 10)
	if got := OverlapFraction(subject, clip); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("overlap fraction = %v, want 0.5", got)
	}
	if got := OverlapFraction(subject, Rect(100, 100, 101, 101)); got != 0 {
		t.Errorf("disjoint fraction = %v", got)
	}
	if got := OverlapFraction(subject, Rect(-10, -10, 20, 20)); math.Abs(got-1) > 1e-9 {
		t.Errorf("contained fraction = %v", got)
	}
	if got := OverlapFraction(Polygon{}, clip); got != 0 {
		t.Errorf("empty subject fraction = %v", got)
	}
}

func TestClipAreaNeverExceedsOperands(t *testing.T) {
	// Property: the clipped area is bounded by both operand areas, and
	// matches Intersects.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		a := Rect(rng.Float64()*10, rng.Float64()*10, 10+rng.Float64()*10, 10+rng.Float64()*10)
		c := Rect(rng.Float64()*20, rng.Float64()*20, 20+rng.Float64()*5, 20+rng.Float64()*5)
		area := IntersectionArea(a, c)
		if area < -1e-9 || area > a.Area()+1e-9 || area > c.Area()+1e-9 {
			t.Fatalf("area %v out of bounds (a=%v c=%v)", area, a.Area(), c.Area())
		}
		if area > 1e-9 && !Intersects(a, c) {
			t.Fatalf("positive area but Intersects=false")
		}
	}
}
