package geom

import (
	"errors"
	"fmt"
)

// Validation errors returned by Validate. Use errors.Is to test for them.
var (
	ErrTooFewCoords    = errors.New("geom: too few coordinates")
	ErrRingNotSimple   = errors.New("geom: ring is self-intersecting")
	ErrHoleOutside     = errors.New("geom: hole not inside shell")
	ErrRepeatedCoord   = errors.New("geom: repeated consecutive coordinate")
	ErrNonFiniteCoord  = errors.New("geom: non-finite coordinate")
	ErrUnsupportedType = errors.New("geom: unsupported geometry type")
)

// Validate checks structural validity of a geometry: coordinate counts,
// finite coordinates, ring simplicity, and hole containment. It returns nil
// for valid geometries and a wrapped sentinel error otherwise. Validation
// is O(n²) in ring size and intended for data ingestion, not hot paths.
func Validate(g Geometry) error {
	switch t := g.(type) {
	case Point:
		return validateFinite([]Point{t})
	case MultiPoint:
		return validateFinite(t.Points)
	case LineString:
		return validateLine(t)
	case MultiLineString:
		for i, l := range t.Lines {
			if err := validateLine(l); err != nil {
				return fmt.Errorf("line %d: %w", i, err)
			}
		}
		return nil
	case Polygon:
		return validatePolygon(t)
	case MultiPolygon:
		for i, p := range t.Polygons {
			if err := validatePolygon(p); err != nil {
				return fmt.Errorf("polygon %d: %w", i, err)
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %T", ErrUnsupportedType, g)
}

func validateFinite(pts []Point) error {
	for _, p := range pts {
		if !isFinite(p.X) || !isFinite(p.Y) {
			return fmt.Errorf("%w: (%v, %v)", ErrNonFiniteCoord, p.X, p.Y)
		}
	}
	return nil
}

func isFinite(f float64) bool { return f == f && f < 1e308 && f > -1e308 }

func validateLine(l LineString) error {
	if len(l.Coords) < 2 {
		return fmt.Errorf("%w: linestring needs >= 2, has %d", ErrTooFewCoords, len(l.Coords))
	}
	if err := validateFinite(l.Coords); err != nil {
		return err
	}
	for i := 1; i < len(l.Coords); i++ {
		if l.Coords[i].DistanceTo(l.Coords[i-1]) <= Eps {
			return fmt.Errorf("%w: at index %d", ErrRepeatedCoord, i)
		}
	}
	return nil
}

func validatePolygon(p Polygon) error {
	if err := validateRing(p.Shell); err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	for i, h := range p.Holes {
		if err := validateRing(h); err != nil {
			return fmt.Errorf("hole %d: %w", i, err)
		}
		// Every hole vertex must be inside or on the shell.
		for _, c := range h.Coords {
			if LocateInRing(c, p.Shell) == Exterior {
				return fmt.Errorf("%w: hole %d vertex (%v, %v)", ErrHoleOutside, i, c.X, c.Y)
			}
		}
	}
	return nil
}

func validateRing(r Ring) error {
	if len(r.Coords) < 3 {
		return fmt.Errorf("%w: ring needs >= 3, has %d", ErrTooFewCoords, len(r.Coords))
	}
	if err := validateFinite(r.Coords); err != nil {
		return err
	}
	n := r.NumSegments()
	for i := 0; i < n; i++ {
		si := r.Segment(i)
		if si.IsDegenerate() {
			return fmt.Errorf("%w: ring edge %d", ErrRepeatedCoord, i)
		}
		for j := i + 1; j < n; j++ {
			// Adjacent edges legitimately share a vertex; wrap-around
			// makes edge 0 adjacent to edge n-1.
			adjacent := j == i+1 || (i == 0 && j == n-1)
			kind, p0, p1 := si.Intersect(r.Segment(j))
			switch kind {
			case IntersectionNone:
			case IntersectionPoint:
				if !adjacent {
					return fmt.Errorf("%w: edges %d and %d meet at (%v, %v)",
						ErrRingNotSimple, i, j, p0.X, p0.Y)
				}
			case IntersectionOverlap:
				return fmt.Errorf("%w: edges %d and %d overlap from (%v, %v) to (%v, %v)",
					ErrRingNotSimple, i, j, p0.X, p0.Y, p1.X, p1.Y)
			}
		}
	}
	return nil
}
