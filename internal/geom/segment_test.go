package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrientation(t *testing.T) {
	a, b := Pt(0, 0), Pt(4, 0)
	if got := Orientation(a, b, Pt(2, 1)); got != 1 {
		t.Errorf("left point orientation = %d, want 1", got)
	}
	if got := Orientation(a, b, Pt(2, -1)); got != -1 {
		t.Errorf("right point orientation = %d, want -1", got)
	}
	if got := Orientation(a, b, Pt(2, 0)); got != 0 {
		t.Errorf("collinear orientation = %d, want 0", got)
	}
	if got := Orientation(a, b, Pt(9, 0)); got != 0 {
		t.Errorf("collinear beyond orientation = %d, want 0", got)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(3, 4)}
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if m := s.Midpoint(); !m.Equal(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", m)
	}
	if s.IsDegenerate() {
		t.Error("nondegenerate segment reported degenerate")
	}
	if !(Segment{Pt(1, 1), Pt(1, 1)}).IsDegenerate() {
		t.Error("degenerate segment not detected")
	}
	env := s.Envelope()
	if env.MaxX != 3 || env.MaxY != 4 {
		t.Errorf("Envelope = %+v", env)
	}
}

func TestOnSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 4)}
	for _, p := range []Point{Pt(0, 0), Pt(4, 4), Pt(2, 2)} {
		if !s.OnSegment(p) {
			t.Errorf("OnSegment(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{Pt(5, 5), Pt(-1, -1), Pt(2, 2.5)} {
		if s.OnSegment(p) {
			t.Errorf("OnSegment(%v) = true, want false", p)
		}
	}
}

func TestClosestPointAndDistance(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	cases := []struct {
		p, want Point
		dist    float64
	}{
		{Pt(2, 3), Pt(2, 0), 3},
		{Pt(-2, 0), Pt(0, 0), 2},
		{Pt(7, 4), Pt(4, 0), 5},
		{Pt(1, 0), Pt(1, 0), 0},
	}
	for _, tc := range cases {
		if got := s.ClosestPoint(tc.p); !got.Equal(tc.want) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
		if got := s.DistanceToPoint(tc.p); got != tc.dist {
			t.Errorf("DistanceToPoint(%v) = %v, want %v", tc.p, got, tc.dist)
		}
	}
	deg := Segment{Pt(1, 1), Pt(1, 1)}
	if got := deg.ClosestPoint(Pt(4, 5)); !got.Equal(Pt(1, 1)) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
}

func TestSegmentIntersectCrossing(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 4)}
	o := Segment{Pt(0, 4), Pt(4, 0)}
	kind, p, _ := s.Intersect(o)
	if kind != IntersectionPoint {
		t.Fatalf("kind = %v, want point", kind)
	}
	if p.DistanceTo(Pt(2, 2)) > 1e-12 {
		t.Errorf("crossing point = %v, want (2,2)", p)
	}
}

func TestSegmentIntersectEndpointTouch(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(2, 0)}
	// o touches s at s's endpoint.
	o := Segment{Pt(2, 0), Pt(4, 3)}
	kind, p, _ := s.Intersect(o)
	if kind != IntersectionPoint || !p.Equal(Pt(2, 0)) {
		t.Errorf("endpoint touch: kind=%v p=%v", kind, p)
	}
	// o's endpoint in the middle of s (T-junction).
	o = Segment{Pt(1, 0), Pt(1, 5)}
	kind, p, _ = s.Intersect(o)
	if kind != IntersectionPoint || !p.Equal(Pt(1, 0)) {
		t.Errorf("T junction: kind=%v p=%v", kind, p)
	}
}

func TestSegmentIntersectNone(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(2, 0)}
	for _, o := range []Segment{
		{Pt(0, 1), Pt(2, 1)},   // parallel above
		{Pt(3, 0), Pt(5, 0)},   // collinear disjoint
		{Pt(3, 3), Pt(4, 4)},   // far away
		{Pt(1, 0.5), Pt(1, 2)}, // would hit if extended down
	} {
		if kind, _, _ := s.Intersect(o); kind != IntersectionNone {
			t.Errorf("Intersect(%v) = %v, want none", o, kind)
		}
	}
}

func TestSegmentIntersectCollinearOverlap(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	o := Segment{Pt(2, 0), Pt(6, 0)}
	kind, p0, p1 := s.Intersect(o)
	if kind != IntersectionOverlap {
		t.Fatalf("kind = %v, want overlap", kind)
	}
	lo, hi := p0.X, p1.X
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 2 || hi != 4 {
		t.Errorf("overlap = [%v, %v], want [2, 4]", lo, hi)
	}

	// Full containment of o within s.
	o = Segment{Pt(1, 0), Pt(3, 0)}
	kind, p0, p1 = s.Intersect(o)
	if kind != IntersectionOverlap {
		t.Fatalf("containment kind = %v", kind)
	}
	lo, hi = math.Min(p0.X, p1.X), math.Max(p0.X, p1.X)
	if lo != 1 || hi != 3 {
		t.Errorf("containment overlap = [%v, %v]", lo, hi)
	}

	// Collinear touching at a single point.
	o = Segment{Pt(4, 0), Pt(8, 0)}
	kind, p0, _ = s.Intersect(o)
	if kind != IntersectionPoint || !p0.Equal(Pt(4, 0)) {
		t.Errorf("collinear point touch: kind=%v p=%v", kind, p0)
	}

	// Vertical collinear overlap exercises the Y-dominant branch.
	s = Segment{Pt(0, 0), Pt(0, 4)}
	o = Segment{Pt(0, 2), Pt(0, 6)}
	kind, p0, p1 = s.Intersect(o)
	if kind != IntersectionOverlap {
		t.Fatalf("vertical overlap kind = %v", kind)
	}
	lo, hi = math.Min(p0.Y, p1.Y), math.Max(p0.Y, p1.Y)
	if lo != 2 || hi != 4 {
		t.Errorf("vertical overlap = [%v, %v]", lo, hi)
	}
}

func TestSegmentDistanceToSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	cases := []struct {
		o    Segment
		want float64
	}{
		{Segment{Pt(0, 3), Pt(4, 3)}, 3},  // parallel
		{Segment{Pt(2, -1), Pt(2, 1)}, 0}, // crossing
		{Segment{Pt(6, 0), Pt(8, 0)}, 2},  // collinear gap
		{Segment{Pt(5, 1), Pt(5, 4)}, math.Sqrt(2)},
	}
	for _, tc := range cases {
		if got := s.DistanceToSegment(tc.o); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DistanceToSegment(%v) = %v, want %v", tc.o, got, tc.want)
		}
	}
}

func TestSegmentIntersectSymmetry(t *testing.T) {
	// Property: intersection kind is symmetric in the operands.
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Segment{Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))}
		o := Segment{Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy))}
		if s.IsDegenerate() || o.IsDegenerate() {
			return true
		}
		k1, _, _ := s.Intersect(o)
		k2, _, _ := o.Intersect(s)
		return k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSegmentIntersectPointIsOnBoth(t *testing.T) {
	// Property: a reported intersection point lies on both segments.
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Segment{Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))}
		o := Segment{Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy))}
		if s.IsDegenerate() || o.IsDegenerate() {
			return true
		}
		kind, p0, p1 := s.Intersect(o)
		switch kind {
		case IntersectionPoint:
			return s.DistanceToPoint(p0) < 1e-6 && o.DistanceToPoint(p0) < 1e-6
		case IntersectionOverlap:
			return s.DistanceToPoint(p0) < 1e-6 && o.DistanceToPoint(p0) < 1e-6 &&
				s.DistanceToPoint(p1) < 1e-6 && o.DistanceToPoint(p1) < 1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
