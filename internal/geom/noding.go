package geom

import (
	"fmt"
	"math"
	"sort"
)

// EdgeRole describes which part of a geometry's point-set a segment of
// linework belongs to. Segments of a LineString belong to the line's
// interior (except for the endpoint boundary, tracked separately), while
// segments of polygon rings belong to the polygon's boundary.
type EdgeRole int

// Edge roles.
const (
	// RoleLineInterior marks a segment of a linestring.
	RoleLineInterior EdgeRole = iota
	// RoleRingBoundary marks a segment of a polygon ring (shell or hole).
	RoleRingBoundary
)

// TaggedSegment couples a segment with the role it plays in its geometry.
type TaggedSegment struct {
	Seg  Segment
	Role EdgeRole
}

// Soup is the decomposition of a geometry into primitive linework and
// points, tagged with their point-set role. It is the working
// representation of the relate (DE-9IM) computation.
type Soup struct {
	// Geometry is the source geometry.
	Geometry Geometry
	// Segments is all linework: linestring segments and ring edges.
	Segments []TaggedSegment
	// InteriorPoints are isolated points belonging to the geometry's
	// interior (the members of Point/MultiPoint geometries).
	InteriorPoints []Point
	// BoundaryPoints are the boundary points of the geometry's
	// linestrings after applying the mod-2 rule.
	BoundaryPoints []Point
	// HasArea reports whether the geometry has 2-D components.
	HasArea bool
	// HasLine reports whether the geometry has 1-D components.
	HasLine bool
	// HasPoint reports whether the geometry has 0-D components.
	HasPoint bool
}

// BuildSoup decomposes g into its tagged primitive parts.
func BuildSoup(g Geometry) *Soup {
	s := &Soup{Geometry: g}
	var addLine func(l LineString)
	endpointCount := map[Point]int{}
	addLine = func(l LineString) {
		if len(l.Coords) == 0 {
			return
		}
		s.HasLine = true
		for i := 0; i < l.NumSegments(); i++ {
			seg := l.Segment(i)
			if seg.IsDegenerate() {
				continue
			}
			s.Segments = append(s.Segments, TaggedSegment{seg, RoleLineInterior})
		}
		if !l.IsClosed() && len(l.Coords) >= 2 {
			endpointCount[l.Coords[0]]++
			endpointCount[l.Coords[len(l.Coords)-1]]++
		}
	}
	addPoly := func(p Polygon) {
		if p.IsEmpty() {
			return
		}
		s.HasArea = true
		for _, r := range p.Rings() {
			for i := 0; i < r.NumSegments(); i++ {
				seg := r.Segment(i)
				if seg.IsDegenerate() {
					continue
				}
				s.Segments = append(s.Segments, TaggedSegment{seg, RoleRingBoundary})
			}
		}
	}
	switch t := g.(type) {
	case Point:
		s.HasPoint = true
		s.InteriorPoints = append(s.InteriorPoints, t)
	case MultiPoint:
		if len(t.Points) > 0 {
			s.HasPoint = true
		}
		s.InteriorPoints = append(s.InteriorPoints, t.Points...)
	case LineString:
		addLine(t)
	case MultiLineString:
		for _, l := range t.Lines {
			addLine(l)
		}
	case Polygon:
		addPoly(t)
	case MultiPolygon:
		for _, p := range t.Polygons {
			addPoly(p)
		}
	default:
		panic(fmt.Sprintf("geom: unknown geometry type %T", g))
	}
	for p, c := range endpointCount {
		if c%2 == 1 {
			s.BoundaryPoints = append(s.BoundaryPoints, p)
		}
	}
	// Deterministic order for reproducibility (map iteration is random).
	sort.Slice(s.BoundaryPoints, func(i, j int) bool {
		a, b := s.BoundaryPoints[i], s.BoundaryPoints[j]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return s
}

// NodeResult is the outcome of noding two soups against each other.
type NodeResult struct {
	// SubA and SubB hold the segments of each soup split at every
	// intersection with the other soup's linework.
	SubA, SubB []TaggedSegment
	// Nodes is the deduplicated set of intersection points between the
	// two soups' linework.
	Nodes []Point
}

// NodeSoups splits the segments of a and b at all mutual intersection
// points and collects those points. The splitting is quadratic in the
// number of segments with an envelope pre-filter, which is appropriate for
// the feature-versus-feature relate calls this package serves (features
// have tens of vertices; the cross-feature candidate filtering happens in
// the spatial index, not here).
func NodeSoups(a, b *Soup) NodeResult {
	var res NodeResult
	nodeSet := newPointSet()

	cutsA := make([][]float64, len(a.Segments))
	cutsB := make([][]float64, len(b.Segments))

	for i, sa := range a.Segments {
		ea := sa.Seg.Envelope().Buffer(Eps)
		for j, sb := range b.Segments {
			if !ea.Intersects(sb.Seg.Envelope()) {
				continue
			}
			kind, p0, p1 := sa.Seg.Intersect(sb.Seg)
			switch kind {
			case IntersectionPoint:
				cutsA[i] = append(cutsA[i], paramOn(sa.Seg, p0))
				cutsB[j] = append(cutsB[j], paramOn(sb.Seg, p0))
				nodeSet.add(p0)
			case IntersectionOverlap:
				for _, p := range []Point{p0, p1} {
					cutsA[i] = append(cutsA[i], paramOn(sa.Seg, p))
					cutsB[j] = append(cutsB[j], paramOn(sb.Seg, p))
					nodeSet.add(p)
				}
			}
		}
	}
	// Also split at the other soup's isolated points: a point feature
	// lying on a segment must become a vertex, or the sub-segment
	// midpoint classification could coincide with the point itself.
	splitAtPoints := func(segs []TaggedSegment, cuts [][]float64, pts []Point) {
		for i, ts := range segs {
			env := ts.Seg.Envelope().Buffer(Eps)
			for _, p := range pts {
				if env.ContainsPoint(p) && ts.Seg.OnSegment(p) {
					cuts[i] = append(cuts[i], paramOn(ts.Seg, p))
					nodeSet.add(p)
				}
			}
		}
	}
	bPts := append(append([]Point{}, b.InteriorPoints...), b.BoundaryPoints...)
	aPts := append(append([]Point{}, a.InteriorPoints...), a.BoundaryPoints...)
	splitAtPoints(a.Segments, cutsA, bPts)
	splitAtPoints(b.Segments, cutsB, aPts)

	res.SubA = splitAll(a.Segments, cutsA)
	res.SubB = splitAll(b.Segments, cutsB)
	res.Nodes = nodeSet.points
	return res
}

// paramOn returns the parameter of p along segment s in [0, 1].
func paramOn(s Segment, p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// splitAll splits every segment at its sorted cut parameters, dropping
// degenerate pieces.
func splitAll(segs []TaggedSegment, cuts [][]float64) []TaggedSegment {
	out := make([]TaggedSegment, 0, len(segs))
	for i, ts := range segs {
		cs := cuts[i]
		if len(cs) == 0 {
			out = append(out, ts)
			continue
		}
		sort.Float64s(cs)
		prev := 0.0
		prevPt := ts.Seg.A
		emit := func(t float64, pt Point) {
			if t-prev > Eps && prevPt.DistanceTo(pt) > Eps {
				out = append(out, TaggedSegment{Segment{prevPt, pt}, ts.Role})
			}
			prev, prevPt = t, pt
		}
		d := ts.Seg.B.Sub(ts.Seg.A)
		for _, t := range cs {
			if t <= prev+Eps {
				continue
			}
			emit(t, ts.Seg.A.Add(d.Scale(t)))
		}
		emit(1, ts.Seg.B)
	}
	return out
}

// pointSet deduplicates points within the package tolerance. Linear scan:
// the relate computation produces a handful of nodes per feature pair.
type pointSet struct {
	points []Point
}

func newPointSet() *pointSet { return &pointSet{} }

func (s *pointSet) add(p Point) {
	for _, q := range s.points {
		if p.DistanceTo(q) <= Eps {
			return
		}
	}
	s.points = append(s.points, p)
}
