// Package geom implements the planar geometry substrate used by the
// qualitative spatial reasoning layers: geometry types (points, lines,
// polygons and their multi-variants), robust-enough geometric predicates,
// measures (length, area, distance), point location, linework noding, and
// WKT encoding.
//
// The package is deliberately self-contained (stdlib only) and models the
// simple-features geometry hierarchy closely enough that the DE-9IM
// computation in package de9im can reproduce the 9-intersection semantics
// of Egenhofer & Franzosa that the paper's predicate extraction relies on.
//
// Coordinates are float64 pairs in an arbitrary planar Cartesian reference
// system. Geometries are treated as immutable after construction; callers
// must not mutate coordinate slices they pass in.
package geom

import (
	"fmt"
	"math"
)

// Type identifies the concrete geometry type.
type Type int

// Geometry type tags, mirroring the simple-features hierarchy.
const (
	TypePoint Type = iota
	TypeMultiPoint
	TypeLineString
	TypeMultiLineString
	TypePolygon
	TypeMultiPolygon
)

// String returns the WKT keyword of the type.
func (t Type) String() string {
	switch t {
	case TypePoint:
		return "POINT"
	case TypeMultiPoint:
		return "MULTIPOINT"
	case TypeLineString:
		return "LINESTRING"
	case TypeMultiLineString:
		return "MULTILINESTRING"
	case TypePolygon:
		return "POLYGON"
	case TypeMultiPolygon:
		return "MULTIPOLYGON"
	}
	return fmt.Sprintf("geom.Type(%d)", int(t))
}

// Geometry is the interface implemented by every geometry type in this
// package. Implementations are value types; copying is cheap (slices are
// shared) and safe as long as the shared coordinates are not mutated.
type Geometry interface {
	// GeomType reports the concrete type tag.
	GeomType() Type
	// Envelope returns the minimal axis-aligned bounding box. Empty
	// geometries return an empty envelope.
	Envelope() Envelope
	// IsEmpty reports whether the geometry has no coordinates.
	IsEmpty() bool
	// Dimension is the topological dimension: 0 for points, 1 for lines,
	// 2 for polygons, independent of emptiness.
	Dimension() int
	// WKT renders the geometry as well-known text.
	WKT() string
}

// Point is a single position. The zero value is the origin.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// GeomType implements Geometry.
func (p Point) GeomType() Type { return TypePoint }

// Envelope implements Geometry.
func (p Point) Envelope() Envelope { return Envelope{p.X, p.Y, p.X, p.Y} }

// IsEmpty implements Geometry. A Point value is never empty.
func (p Point) IsEmpty() bool { return false }

// Dimension implements Geometry.
func (p Point) Dimension() int { return 0 }

// Equal reports exact coordinate equality.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the translated point p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns the point scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2-D cross product (z component) of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// MultiPoint is a collection of points.
type MultiPoint struct {
	Points []Point
}

// GeomType implements Geometry.
func (m MultiPoint) GeomType() Type { return TypeMultiPoint }

// Envelope implements Geometry.
func (m MultiPoint) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m.Points {
		e = e.ExpandToPoint(p)
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPoint) IsEmpty() bool { return len(m.Points) == 0 }

// Dimension implements Geometry.
func (m MultiPoint) Dimension() int { return 0 }

// LineString is an open or closed polyline with at least two coordinates.
type LineString struct {
	Coords []Point
}

// Line constructs a LineString from coordinates.
func Line(coords ...Point) LineString { return LineString{Coords: coords} }

// GeomType implements Geometry.
func (l LineString) GeomType() Type { return TypeLineString }

// Envelope implements Geometry.
func (l LineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range l.Coords {
		e = e.ExpandToPoint(p)
	}
	return e
}

// IsEmpty implements Geometry.
func (l LineString) IsEmpty() bool { return len(l.Coords) == 0 }

// Dimension implements Geometry.
func (l LineString) Dimension() int { return 1 }

// IsClosed reports whether the first and last coordinates coincide.
func (l LineString) IsClosed() bool {
	n := len(l.Coords)
	return n > 2 && l.Coords[0].Equal(l.Coords[n-1])
}

// Length returns the sum of segment lengths.
func (l LineString) Length() float64 {
	var sum float64
	for i := 1; i < len(l.Coords); i++ {
		sum += l.Coords[i-1].DistanceTo(l.Coords[i])
	}
	return sum
}

// NumSegments returns the number of line segments.
func (l LineString) NumSegments() int {
	if len(l.Coords) < 2 {
		return 0
	}
	return len(l.Coords) - 1
}

// Segment returns the i-th segment.
func (l LineString) Segment(i int) Segment {
	return Segment{l.Coords[i], l.Coords[i+1]}
}

// MultiLineString is a collection of linestrings.
type MultiLineString struct {
	Lines []LineString
}

// GeomType implements Geometry.
func (m MultiLineString) GeomType() Type { return TypeMultiLineString }

// Envelope implements Geometry.
func (m MultiLineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, l := range m.Lines {
		e = e.Union(l.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiLineString) IsEmpty() bool { return len(m.Lines) == 0 }

// Dimension implements Geometry.
func (m MultiLineString) Dimension() int { return 1 }

// Length returns the total length of all member lines.
func (m MultiLineString) Length() float64 {
	var sum float64
	for _, l := range m.Lines {
		sum += l.Length()
	}
	return sum
}

// Ring is a closed ring of coordinates. The closing coordinate is implicit:
// a Ring with coordinates [a b c] denotes the closed loop a-b-c-a. Rings
// must be simple (non self-intersecting) for predicates to be meaningful.
type Ring struct {
	Coords []Point
}

// NumSegments returns the number of ring edges (== len(Coords) for a
// non-degenerate ring, because the ring closes implicitly).
func (r Ring) NumSegments() int {
	if len(r.Coords) < 3 {
		return 0
	}
	return len(r.Coords)
}

// Segment returns the i-th edge, wrapping around to close the ring.
func (r Ring) Segment(i int) Segment {
	j := i + 1
	if j == len(r.Coords) {
		j = 0
	}
	return Segment{r.Coords[i], r.Coords[j]}
}

// SignedArea returns the shoelace signed area: positive for counterclockwise
// rings, negative for clockwise.
func (r Ring) SignedArea() float64 {
	var sum float64
	n := len(r.Coords)
	if n < 3 {
		return 0
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += r.Coords[i].Cross(r.Coords[j])
	}
	return sum / 2
}

// Area returns the absolute enclosed area.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether the ring winds counterclockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Envelope returns the bounding box of the ring.
func (r Ring) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range r.Coords {
		e = e.ExpandToPoint(p)
	}
	return e
}

// Polygon is an area bounded by one exterior shell and zero or more interior
// hole rings. Holes must lie inside the shell and must not overlap each
// other; this package does not verify validity on construction (see
// Validate).
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// Poly constructs a hole-free polygon from shell coordinates.
func Poly(shell ...Point) Polygon { return Polygon{Shell: Ring{Coords: shell}} }

// Rect constructs an axis-aligned rectangular polygon.
func Rect(minX, minY, maxX, maxY float64) Polygon {
	return Poly(Pt(minX, minY), Pt(maxX, minY), Pt(maxX, maxY), Pt(minX, maxY))
}

// GeomType implements Geometry.
func (p Polygon) GeomType() Type { return TypePolygon }

// Envelope implements Geometry.
func (p Polygon) Envelope() Envelope { return p.Shell.Envelope() }

// IsEmpty implements Geometry.
func (p Polygon) IsEmpty() bool { return len(p.Shell.Coords) == 0 }

// Dimension implements Geometry.
func (p Polygon) Dimension() int { return 2 }

// Area returns the enclosed area (shell minus holes).
func (p Polygon) Area() float64 {
	a := p.Shell.Area()
	for _, h := range p.Holes {
		a -= h.Area()
	}
	return a
}

// Rings returns every ring of the polygon: the shell followed by the holes.
func (p Polygon) Rings() []Ring {
	rings := make([]Ring, 0, 1+len(p.Holes))
	rings = append(rings, p.Shell)
	rings = append(rings, p.Holes...)
	return rings
}

// Centroid returns the area-weighted centroid of the polygon. Degenerate
// polygons fall back to the mean of the shell coordinates.
func (p Polygon) Centroid() Point {
	cx, cy, w := ringCentroidAccum(p.Shell)
	for _, h := range p.Holes {
		hx, hy, hw := ringCentroidAccum(h)
		cx -= hx
		cy -= hy
		w -= hw
	}
	if w == 0 {
		var sx, sy float64
		n := len(p.Shell.Coords)
		if n == 0 {
			return Point{}
		}
		for _, c := range p.Shell.Coords {
			sx += c.X
			sy += c.Y
		}
		return Point{sx / float64(n), sy / float64(n)}
	}
	return Point{cx / (6 * w), cy / (6 * w)}
}

// ringCentroidAccum returns the unnormalised centroid accumulators of a
// ring: Σ(x_i+x_j)·cross, Σ(y_i+y_j)·cross, and the ring area (all made
// positive so shells and holes compose by subtraction). The centroid of a
// single ring is (cx/(6·w), cy/(6·w)).
func ringCentroidAccum(r Ring) (cx, cy, w float64) {
	n := len(r.Coords)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cross := r.Coords[i].Cross(r.Coords[j])
		cx += (r.Coords[i].X + r.Coords[j].X) * cross
		cy += (r.Coords[i].Y + r.Coords[j].Y) * cross
		w += cross
	}
	w /= 2
	if w < 0 {
		cx, cy, w = -cx, -cy, -w
	}
	return cx, cy, w
}

// MultiPolygon is a collection of polygons. Member polygons must have
// disjoint interiors for predicates to be meaningful.
type MultiPolygon struct {
	Polygons []Polygon
}

// GeomType implements Geometry.
func (m MultiPolygon) GeomType() Type { return TypeMultiPolygon }

// Envelope implements Geometry.
func (m MultiPolygon) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m.Polygons {
		e = e.Union(p.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPolygon) IsEmpty() bool { return len(m.Polygons) == 0 }

// Dimension implements Geometry.
func (m MultiPolygon) Dimension() int { return 2 }

// Area returns the total area of all member polygons.
func (m MultiPolygon) Area() float64 {
	var a float64
	for _, p := range m.Polygons {
		a += p.Area()
	}
	return a
}

// Translate returns a copy of g shifted by (dx, dy). The returned geometry
// shares no coordinate storage with the input.
func Translate(g Geometry, dx, dy float64) Geometry {
	shift := func(ps []Point) []Point {
		out := make([]Point, len(ps))
		for i, p := range ps {
			out[i] = Point{p.X + dx, p.Y + dy}
		}
		return out
	}
	switch t := g.(type) {
	case Point:
		return Point{t.X + dx, t.Y + dy}
	case MultiPoint:
		return MultiPoint{Points: shift(t.Points)}
	case LineString:
		return LineString{Coords: shift(t.Coords)}
	case MultiLineString:
		lines := make([]LineString, len(t.Lines))
		for i, l := range t.Lines {
			lines[i] = LineString{Coords: shift(l.Coords)}
		}
		return MultiLineString{Lines: lines}
	case Polygon:
		holes := make([]Ring, len(t.Holes))
		for i, h := range t.Holes {
			holes[i] = Ring{Coords: shift(h.Coords)}
		}
		return Polygon{Shell: Ring{Coords: shift(t.Shell.Coords)}, Holes: holes}
	case MultiPolygon:
		polys := make([]Polygon, len(t.Polygons))
		for i, p := range t.Polygons {
			polys[i] = Translate(p, dx, dy).(Polygon)
		}
		return MultiPolygon{Polygons: polys}
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// Centroid returns a representative centroid for any geometry: the
// area-weighted centroid for polygons, the length-weighted midpoint for
// lines, and the mean for point collections.
func Centroid(g Geometry) Point {
	switch t := g.(type) {
	case Point:
		return t
	case MultiPoint:
		var sx, sy float64
		if len(t.Points) == 0 {
			return Point{}
		}
		for _, p := range t.Points {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(t.Points))
		return Point{sx / n, sy / n}
	case LineString:
		return lineCentroid([]LineString{t})
	case MultiLineString:
		return lineCentroid(t.Lines)
	case Polygon:
		return t.Centroid()
	case MultiPolygon:
		var cx, cy, w float64
		for _, p := range t.Polygons {
			a := p.Area()
			c := p.Centroid()
			cx += c.X * a
			cy += c.Y * a
			w += a
		}
		if w == 0 {
			if len(t.Polygons) == 0 {
				return Point{}
			}
			return t.Polygons[0].Centroid()
		}
		return Point{cx / w, cy / w}
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// lineCentroid returns the length-weighted centroid of a set of lines.
func lineCentroid(lines []LineString) Point {
	var cx, cy, w float64
	for _, l := range lines {
		for i := 1; i < len(l.Coords); i++ {
			a, b := l.Coords[i-1], l.Coords[i]
			length := a.DistanceTo(b)
			cx += (a.X + b.X) / 2 * length
			cy += (a.Y + b.Y) / 2 * length
			w += length
		}
	}
	if w == 0 {
		for _, l := range lines {
			if len(l.Coords) > 0 {
				return l.Coords[0]
			}
		}
		return Point{}
	}
	return Point{cx / w, cy / w}
}
