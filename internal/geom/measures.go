package geom

import "fmt"

// Area returns the enclosed area of any geometry: polygon area (holes
// subtracted) for areal types, 0 for points and lines.
func Area(g Geometry) float64 {
	switch t := g.(type) {
	case Polygon:
		return t.Area()
	case MultiPolygon:
		return t.Area()
	case Point, MultiPoint, LineString, MultiLineString:
		return 0
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// Length returns the total boundary/path length of any geometry: line
// length for 1-D types, perimeter (all rings) for areal types, 0 for
// points.
func Length(g Geometry) float64 {
	switch t := g.(type) {
	case Point, MultiPoint:
		return 0
	case LineString:
		return t.Length()
	case MultiLineString:
		return t.Length()
	case Polygon:
		var sum float64
		for _, r := range t.Rings() {
			sum += ringLength(r)
		}
		return sum
	case MultiPolygon:
		var sum float64
		for _, p := range t.Polygons {
			sum += Length(p)
		}
		return sum
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// ringLength returns the closed perimeter of a ring.
func ringLength(r Ring) float64 {
	var sum float64
	for i := 0; i < r.NumSegments(); i++ {
		sum += r.Segment(i).Length()
	}
	return sum
}
