package geom

// ClipToConvex clips a polygon's shell against a convex clip ring using
// the Sutherland–Hodgman algorithm and returns the clipped polygon. The
// clip ring must be convex (e.g. a rectangle or a convex hull); the
// subject may be any simple polygon, though holes are ignored (see
// IntersectionArea for hole-aware area computation). An empty result
// means the shapes' interiors do not intersect.
func ClipToConvex(subject Ring, clip Ring) Ring {
	if len(subject.Coords) < 3 || len(clip.Coords) < 3 {
		return Ring{}
	}
	// Normalise the clip ring to counterclockwise so "inside" is always
	// the left side of each directed edge.
	clipCoords := clip.Coords
	if !clip.IsCCW() {
		clipCoords = reversePoints(clipCoords)
	}
	output := append([]Point{}, subject.Coords...)
	n := len(clipCoords)
	for i := 0; i < n && len(output) > 0; i++ {
		a := clipCoords[i]
		b := clipCoords[(i+1)%n]
		output = clipAgainstEdge(output, a, b)
	}
	// Drop near-duplicate consecutive vertices introduced by clipping.
	output = dedupeRing(output)
	if len(output) < 3 {
		return Ring{}
	}
	return Ring{Coords: output}
}

// clipAgainstEdge keeps the part of the subject on the left of the
// directed edge a->b.
func clipAgainstEdge(subject []Point, a, b Point) []Point {
	var out []Point
	n := len(subject)
	for i := 0; i < n; i++ {
		cur := subject[i]
		prev := subject[(i+n-1)%n]
		curIn := Orientation(a, b, cur) >= 0
		prevIn := Orientation(a, b, prev) >= 0
		switch {
		case curIn && prevIn:
			out = append(out, cur)
		case curIn && !prevIn:
			if p, ok := lineIntersection(prev, cur, a, b); ok {
				out = append(out, p)
			}
			out = append(out, cur)
		case !curIn && prevIn:
			if p, ok := lineIntersection(prev, cur, a, b); ok {
				out = append(out, p)
			}
		}
	}
	return out
}

// lineIntersection intersects the infinite lines through (p1, p2) and
// (p3, p4).
func lineIntersection(p1, p2, p3, p4 Point) (Point, bool) {
	d1 := p2.Sub(p1)
	d2 := p4.Sub(p3)
	den := d1.Cross(d2)
	if den == 0 {
		return Point{}, false
	}
	t := p3.Sub(p1).Cross(d2) / den
	return p1.Add(d1.Scale(t)), true
}

// reversePoints returns the coordinates in reverse order.
func reversePoints(ps []Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[len(ps)-1-i] = p
	}
	return out
}

// dedupeRing removes consecutive near-duplicate vertices (including the
// wrap-around pair).
func dedupeRing(ps []Point) []Point {
	if len(ps) == 0 {
		return ps
	}
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p.DistanceTo(out[len(out)-1]) > Eps {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].DistanceTo(out[len(out)-1]) <= Eps {
		out = out[:len(out)-1]
	}
	return out
}

// IntersectionArea returns the area of intersection between polygon p and
// a convex clip polygon. Holes of p are subtracted (clipped against the
// same region); holes of the clip polygon are not supported and must be
// empty.
func IntersectionArea(p Polygon, convexClip Polygon) float64 {
	if len(convexClip.Holes) != 0 {
		panic("geom: IntersectionArea clip polygon must have no holes")
	}
	area := ClipToConvex(p.Shell, convexClip.Shell).Area()
	for _, h := range p.Holes {
		area -= ClipToConvex(h, convexClip.Shell).Area()
	}
	if area < 0 {
		area = 0
	}
	return area
}

// OverlapFraction returns |p ∩ clip| / |p|: the fraction of p's area that
// lies inside the convex clip polygon. Degenerate p yields 0.
func OverlapFraction(p Polygon, convexClip Polygon) float64 {
	total := p.Area()
	if total <= 0 {
		return 0
	}
	return IntersectionArea(p, convexClip) / total
}
