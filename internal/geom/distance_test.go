package geom

import (
	"math"
	"testing"
)

func TestDistancePointPoint(t *testing.T) {
	if got := Distance(Pt(0, 0), Pt(3, 4)); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := Distance(Pt(1, 1), Pt(1, 1)); got != 0 {
		t.Errorf("coincident distance = %v, want 0", got)
	}
}

func TestDistancePointPolygon(t *testing.T) {
	sq := Rect(0, 0, 4, 4)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 2), 0},  // inside
		{Pt(4, 2), 0},  // on boundary
		{Pt(7, 2), 3},  // right of
		{Pt(7, 8), 5},  // diagonal 3-4-5
		{Pt(-3, 2), 3}, // left of
	}
	for _, tc := range cases {
		if got := Distance(tc.p, sq); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Distance(%v, sq) = %v, want %v", tc.p, got, tc.want)
		}
		// Symmetry.
		if got := Distance(sq, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Distance(sq, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestDistancePolygonPolygon(t *testing.T) {
	a := Rect(0, 0, 2, 2)
	cases := []struct {
		b    Geometry
		want float64
	}{
		{Rect(1, 1, 3, 3), 0},              // overlapping
		{Rect(2, 0, 4, 2), 0},              // touching edge
		{Rect(5, 0, 6, 2), 3},              // gap
		{Rect(0.5, 0.5, 1.5, 1.5), 0},      // contained
		{Rect(5, 5, 6, 6), 3 * math.Sqrt2}, // diagonal gap
	}
	for _, tc := range cases {
		if got := Distance(a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Distance(a, %v) = %v, want %v", tc.b.WKT(), got, tc.want)
		}
	}
}

func TestDistanceLineCases(t *testing.T) {
	l := Line(Pt(0, 0), Pt(4, 0))
	if got := Distance(l, Line(Pt(0, 3), Pt(4, 3))); got != 3 {
		t.Errorf("parallel lines = %v, want 3", got)
	}
	if got := Distance(l, Line(Pt(2, -1), Pt(2, 1))); got != 0 {
		t.Errorf("crossing lines = %v, want 0", got)
	}
	if got := Distance(l, Pt(2, 2)); got != 2 {
		t.Errorf("line-point = %v, want 2", got)
	}
	// Line fully inside polygon: distance 0 via containment short-circuit.
	if got := Distance(Line(Pt(1, 1), Pt(2, 2)), Rect(0, 0, 4, 4)); got != 0 {
		t.Errorf("line in polygon = %v, want 0", got)
	}
	// Point inside polygon.
	if got := Distance(Rect(0, 0, 4, 4), Pt(1, 1)); got != 0 {
		t.Errorf("point in polygon = %v, want 0", got)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if got := Distance(MultiPoint{}, Pt(0, 0)); !math.IsInf(got, 1) {
		t.Errorf("empty distance = %v, want +Inf", got)
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Geometry
		want bool
	}{
		{Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), true},
		{Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), true}, // touch
		{Rect(0, 0, 2, 2), Rect(3, 3, 4, 4), false},
		{Pt(1, 1), Rect(0, 0, 2, 2), true},
		{Pt(5, 5), Rect(0, 0, 2, 2), false},
		{Line(Pt(-1, 1), Pt(3, 1)), Rect(0, 0, 2, 2), true},
		{MultiPoint{}, Rect(0, 0, 2, 2), false},
	}
	for _, tc := range cases {
		if got := Intersects(tc.a, tc.b); got != tc.want {
			t.Errorf("Intersects(%s, %s) = %v, want %v", tc.a.WKT(), tc.b.WKT(), got, tc.want)
		}
		if got := Intersects(tc.b, tc.a); got != tc.want {
			t.Errorf("Intersects(%s, %s) = %v, want %v (symmetry)", tc.b.WKT(), tc.a.WKT(), got, tc.want)
		}
	}
}

func TestDistanceHoledPolygon(t *testing.T) {
	donut := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(3, 3), Pt(7, 3), Pt(7, 7), Pt(3, 7)}}},
	}
	// A point in the hole is outside the polygon but Distance is measured
	// to the point-set, so the nearest hole edge counts.
	if got := Distance(Pt(5, 5), donut); got != 2 {
		t.Errorf("hole-center distance = %v, want 2", got)
	}
	if got := Distance(Pt(1, 5), donut); got != 0 {
		t.Errorf("in-ring distance = %v, want 0", got)
	}
}
