package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyEnvelope(t *testing.T) {
	e := EmptyEnvelope()
	if !e.IsEmpty() {
		t.Fatal("EmptyEnvelope not empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Error("empty envelope extents should be 0")
	}
	if e.Intersects(Envelope{0, 0, 1, 1}) {
		t.Error("empty envelope intersects something")
	}
	if e.Contains(Envelope{0, 0, 1, 1}) || (Envelope{0, 0, 1, 1}).Contains(e) {
		t.Error("containment with empty envelope")
	}
	if e.ContainsPoint(Pt(0, 0)) {
		t.Error("empty envelope contains a point")
	}
	got := e.Union(Envelope{0, 0, 1, 1})
	if got != (Envelope{0, 0, 1, 1}) {
		t.Errorf("union with empty = %+v", got)
	}
	got = (Envelope{0, 0, 1, 1}).Union(e)
	if got != (Envelope{0, 0, 1, 1}) {
		t.Errorf("union with empty (rhs) = %+v", got)
	}
}

func TestEnvelopeBasics(t *testing.T) {
	e := NewEnvelope(Pt(4, 1), Pt(0, 5))
	if e.MinX != 0 || e.MinY != 1 || e.MaxX != 4 || e.MaxY != 5 {
		t.Fatalf("NewEnvelope normalisation failed: %+v", e)
	}
	if e.Width() != 4 || e.Height() != 4 || e.Area() != 16 || e.Perimeter() != 8 {
		t.Error("extent accessors wrong")
	}
	if c := e.Center(); !c.Equal(Pt(2, 3)) {
		t.Errorf("Center = %v", c)
	}
	if !e.ContainsPoint(Pt(0, 1)) || !e.ContainsPoint(Pt(2, 3)) || e.ContainsPoint(Pt(5, 3)) {
		t.Error("ContainsPoint wrong")
	}
	b := e.Buffer(1)
	if b.MinX != -1 || b.MaxY != 6 {
		t.Errorf("Buffer = %+v", b)
	}
}

func TestEnvelopeIntersectsContains(t *testing.T) {
	a := Envelope{0, 0, 4, 4}
	cases := []struct {
		name                 string
		b                    Envelope
		intersects, contains bool
	}{
		{"identical", Envelope{0, 0, 4, 4}, true, true},
		{"inside", Envelope{1, 1, 2, 2}, true, true},
		{"overlapping", Envelope{3, 3, 6, 6}, true, false},
		{"touching edge", Envelope{4, 0, 6, 4}, true, false},
		{"touching corner", Envelope{4, 4, 6, 6}, true, false},
		{"disjoint", Envelope{5, 5, 6, 6}, false, false},
		{"disjoint in y only", Envelope{0, 5, 4, 6}, false, false},
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.intersects {
			t.Errorf("%s: Intersects = %v, want %v", tc.name, got, tc.intersects)
		}
		if got := a.Contains(tc.b); got != tc.contains {
			t.Errorf("%s: Contains = %v, want %v", tc.name, got, tc.contains)
		}
	}
}

func TestEnvelopeDistance(t *testing.T) {
	a := Envelope{0, 0, 1, 1}
	cases := []struct {
		b    Envelope
		want float64
	}{
		{Envelope{0.5, 0.5, 2, 2}, 0},  // overlapping
		{Envelope{1, 1, 2, 2}, 0},      // corner touch
		{Envelope{3, 0, 4, 1}, 2},      // purely horizontal gap
		{Envelope{0, 3, 1, 4}, 2},      // purely vertical gap
		{Envelope{4, 5, 6, 7}, 5},      // diagonal 3-4-5
		{Envelope{-4, -5, -3, -4}, 5},  // diagonal on the other side
		{EmptyEnvelope(), math.Inf(1)}, // empty operand
	}
	for _, tc := range cases {
		if got := a.Distance(tc.b); got != tc.want {
			t.Errorf("Distance(%+v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestEnvelopeUnionProperties(t *testing.T) {
	// Property: the union contains both operands and is commutative.
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		e1 := NewEnvelope(Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)))
		e2 := NewEnvelope(Pt(clampF(cx), clampF(cy)), Pt(clampF(dx), clampF(dy)))
		u := e1.Union(e2)
		return u.Contains(e1) && u.Contains(e2) && u == e2.Union(e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeIntersectsSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		e1 := NewEnvelope(Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)))
		e2 := NewEnvelope(Pt(clampF(cx), clampF(cy)), Pt(clampF(dx), clampF(dy)))
		return e1.Intersects(e2) == e2.Intersects(e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF maps an arbitrary float64 into a well-behaved finite range so
// quick-generated values do not produce NaN/Inf envelopes.
func clampF(f float64) float64 {
	if f != f { // NaN
		return 0
	}
	return math.Mod(f, 1e6)
}
