package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// WKT implements Geometry for Point.
func (p Point) WKT() string {
	return "POINT (" + fmtCoord(p) + ")"
}

// WKT implements Geometry for MultiPoint.
func (m MultiPoint) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOINT EMPTY"
	}
	parts := make([]string, len(m.Points))
	for i, p := range m.Points {
		parts[i] = "(" + fmtCoord(p) + ")"
	}
	return "MULTIPOINT (" + strings.Join(parts, ", ") + ")"
}

// WKT implements Geometry for LineString.
func (l LineString) WKT() string {
	if l.IsEmpty() {
		return "LINESTRING EMPTY"
	}
	return "LINESTRING " + fmtCoordSeq(l.Coords)
}

// WKT implements Geometry for MultiLineString.
func (m MultiLineString) WKT() string {
	if m.IsEmpty() {
		return "MULTILINESTRING EMPTY"
	}
	parts := make([]string, len(m.Lines))
	for i, l := range m.Lines {
		parts[i] = fmtCoordSeq(l.Coords)
	}
	return "MULTILINESTRING (" + strings.Join(parts, ", ") + ")"
}

// WKT implements Geometry for Polygon.
func (p Polygon) WKT() string {
	if p.IsEmpty() {
		return "POLYGON EMPTY"
	}
	return "POLYGON " + fmtPolyBody(p)
}

// WKT implements Geometry for MultiPolygon.
func (m MultiPolygon) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOLYGON EMPTY"
	}
	parts := make([]string, len(m.Polygons))
	for i, p := range m.Polygons {
		parts[i] = fmtPolyBody(p)
	}
	return "MULTIPOLYGON (" + strings.Join(parts, ", ") + ")"
}

func fmtPolyBody(p Polygon) string {
	parts := make([]string, 0, 1+len(p.Holes))
	parts = append(parts, fmtCoordSeq(closedCoords(p.Shell)))
	for _, h := range p.Holes {
		parts = append(parts, fmtCoordSeq(closedCoords(h)))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// closedCoords returns ring coordinates with an explicit closing
// coordinate, as WKT requires.
func closedCoords(r Ring) []Point {
	if len(r.Coords) == 0 {
		return nil
	}
	return append(append([]Point{}, r.Coords...), r.Coords[0])
}

func fmtCoord(p Point) string {
	return strconv.FormatFloat(p.X, 'g', -1, 64) + " " +
		strconv.FormatFloat(p.Y, 'g', -1, 64)
}

func fmtCoordSeq(coords []Point) string {
	parts := make([]string, len(coords))
	for i, p := range coords {
		parts[i] = fmtCoord(p)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ParseWKT parses a well-known-text geometry. It accepts the subset of WKT
// produced by this package: POINT, MULTIPOINT (with or without per-point
// parentheses), LINESTRING, MULTILINESTRING, POLYGON, MULTIPOLYGON, and
// the EMPTY keyword.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{src: s}
	g, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("geom: parsing WKT %q: %w", s, err)
	}
	return g, nil
}

// MustParseWKT is ParseWKT that panics on error; for tests and static data.
func MustParseWKT(s string) Geometry {
	g, err := ParseWKT(s)
	if err != nil {
		panic(err)
	}
	return g
}

type wktParser struct {
	src string
	pos int
}

func (p *wktParser) parse() (Geometry, error) {
	kw := strings.ToUpper(p.ident())
	switch kw {
	case "POINT":
		if p.empty() {
			return MultiPoint{}, nil
		}
		coords, err := p.coordSeq()
		if err != nil {
			return nil, err
		}
		if len(coords) != 1 {
			return nil, fmt.Errorf("POINT needs exactly 1 coordinate, got %d", len(coords))
		}
		return coords[0], nil
	case "MULTIPOINT":
		if p.empty() {
			return MultiPoint{}, nil
		}
		pts, err := p.multipointBody()
		if err != nil {
			return nil, err
		}
		return MultiPoint{Points: pts}, nil
	case "LINESTRING":
		if p.empty() {
			return LineString{}, nil
		}
		coords, err := p.coordSeq()
		if err != nil {
			return nil, err
		}
		return LineString{Coords: coords}, nil
	case "MULTILINESTRING":
		if p.empty() {
			return MultiLineString{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var lines []LineString
		for {
			coords, err := p.coordSeq()
			if err != nil {
				return nil, err
			}
			lines = append(lines, LineString{Coords: coords})
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return MultiLineString{Lines: lines}, nil
	case "POLYGON":
		if p.empty() {
			return Polygon{}, nil
		}
		return p.polygonBody()
	case "MULTIPOLYGON":
		if p.empty() {
			return MultiPolygon{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var polys []Polygon
		for {
			poly, err := p.polygonBody()
			if err != nil {
				return nil, err
			}
			polys = append(polys, poly)
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return MultiPolygon{Polygons: polys}, nil
	case "":
		return nil, fmt.Errorf("empty input")
	default:
		return nil, fmt.Errorf("unsupported geometry keyword %q", kw)
	}
}

func (p *wktParser) polygonBody() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return Polygon{}, err
	}
	var rings []Ring
	for {
		coords, err := p.coordSeq()
		if err != nil {
			return Polygon{}, err
		}
		// Drop the explicit closing coordinate if present.
		if len(coords) > 1 && coords[0].Equal(coords[len(coords)-1]) {
			coords = coords[:len(coords)-1]
		}
		rings = append(rings, Ring{Coords: coords})
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return Polygon{}, err
	}
	poly := Polygon{Shell: rings[0]}
	if len(rings) > 1 {
		poly.Holes = rings[1:]
	}
	return poly, nil
}

func (p *wktParser) multipointBody() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		paren := p.accept('(')
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		if paren {
			if err := p.expect(')'); err != nil {
				return nil, err
			}
		}
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

func (p *wktParser) coordSeq() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var coords []Point
	for {
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		coords = append(coords, pt)
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return coords, nil
}

func (p *wktParser) coord() (Point, error) {
	x, err := p.number()
	if err != nil {
		return Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return Point{}, err
	}
	return Point{x, y}, nil
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' ||
		p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *wktParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

// empty consumes the EMPTY keyword if present.
func (p *wktParser) empty() bool {
	save := p.pos
	if strings.EqualFold(p.ident(), "EMPTY") {
		return true
	}
	p.pos = save
	return false
}

func (p *wktParser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *wktParser) expect(c byte) error {
	if !p.accept(c) {
		got := "end of input"
		if p.pos < len(p.src) {
			got = fmt.Sprintf("%q", p.src[p.pos])
		}
		return fmt.Errorf("expected %q at offset %d, got %s", string(c), p.pos, got)
	}
	return nil
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
			c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number at offset %d", start)
	}
	return strconv.ParseFloat(p.src[start:p.pos], 64)
}
