package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), // corners
		Pt(2, 2), Pt(1, 3), Pt(3, 1), // interior
		Pt(2, 0), // edge midpoint (collinear, must be dropped)
	}
	hull := ConvexHull(pts)
	if got := len(hull.Coords); got != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", got, hull.Coords)
	}
	if !hull.IsCCW() {
		t.Error("hull must be counterclockwise")
	}
	if hull.Area() != 16 {
		t.Errorf("hull area = %v, want 16", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got.Coords) != 0 {
		t.Error("empty input")
	}
	if got := ConvexHull([]Point{Pt(1, 1), Pt(1, 1)}); len(got.Coords) != 1 {
		t.Errorf("duplicate points hull = %v", got.Coords)
	}
	// Collinear points: hull has no area; result keeps < 3 effective
	// orientation but must not panic.
	got := ConvexHull([]Point{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)})
	if got.Area() != 0 {
		t.Errorf("collinear hull area = %v", got.Area())
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 30)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull.Coords) < 3 {
			t.Fatal("degenerate hull from random points")
		}
		for _, p := range pts {
			if LocateInRing(p, hull) == Exterior {
				t.Fatalf("point %v outside its own hull", p)
			}
		}
		// Hull must be convex: every triple turns the same way.
		n := len(hull.Coords)
		for i := 0; i < n; i++ {
			o := Orientation(hull.Coords[i], hull.Coords[(i+1)%n], hull.Coords[(i+2)%n])
			if o < 0 {
				t.Fatal("hull is not convex/CCW")
			}
		}
	}
}

func TestSimplifyStraightLine(t *testing.T) {
	l := Line(Pt(0, 0), Pt(1, 0.001), Pt(2, -0.001), Pt(3, 0), Pt(4, 0))
	s := Simplify(l, 0.01)
	if len(s.Coords) != 2 {
		t.Errorf("near-straight line simplified to %d points, want 2", len(s.Coords))
	}
	if !s.Coords[0].Equal(Pt(0, 0)) || !s.Coords[1].Equal(Pt(4, 0)) {
		t.Error("endpoints not preserved")
	}
}

func TestSimplifyKeepsSignificantVertices(t *testing.T) {
	l := Line(Pt(0, 0), Pt(2, 5), Pt(4, 0))
	s := Simplify(l, 0.5)
	if len(s.Coords) != 3 {
		t.Errorf("significant vertex dropped: %v", s.Coords)
	}
	// Tolerance above the deviation removes it.
	s = Simplify(l, 10)
	if len(s.Coords) != 2 {
		t.Errorf("simplification with huge tolerance = %v", s.Coords)
	}
}

func TestSimplifyWithinTolerance(t *testing.T) {
	// Property: every dropped vertex lies within tolerance of the
	// simplified polyline.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		coords := make([]Point, 40)
		x := 0.0
		for i := range coords {
			x += rng.Float64()
			coords[i] = Pt(x, rng.Float64()*4)
		}
		tol := 0.5
		s := Simplify(LineString{Coords: coords}, tol)
		for _, p := range coords {
			best := math.Inf(1)
			for i := 0; i < s.NumSegments(); i++ {
				if d := s.Segment(i).DistanceToPoint(p); d < best {
					best = d
				}
			}
			if best > tol+1e-9 {
				t.Fatalf("vertex %v deviates %v > tolerance", p, best)
			}
		}
	}
}

func TestSimplifyRing(t *testing.T) {
	// A square with redundant edge midpoints.
	r := Ring{Coords: []Point{
		Pt(0, 0), Pt(2, 0), Pt(4, 0), Pt(4, 2), Pt(4, 4), Pt(2, 4), Pt(0, 4), Pt(0, 2),
	}}
	s := SimplifyRing(r, 0.1)
	if len(s.Coords) != 4 {
		t.Errorf("ring simplified to %d coords, want 4: %v", len(s.Coords), s.Coords)
	}
	if s.Area() != 16 {
		t.Errorf("simplified ring area = %v", s.Area())
	}
	// Small rings pass through unchanged.
	tri := Ring{Coords: []Point{Pt(0, 0), Pt(2, 0), Pt(1, 2)}}
	if got := SimplifyRing(tri, 1); len(got.Coords) != 3 {
		t.Error("triangle must be preserved")
	}
}

func TestAffineBasics(t *testing.T) {
	id := IdentityAffine()
	p := Pt(3, 4)
	if !id.Apply(p).Equal(p) {
		t.Error("identity transform changed a point")
	}
	if got := TranslateAffine(1, 2).Apply(p); !got.Equal(Pt(4, 6)) {
		t.Errorf("translate = %v", got)
	}
	if got := ScaleAffine(2, 3).Apply(p); !got.Equal(Pt(6, 12)) {
		t.Errorf("scale = %v", got)
	}
	got := RotateAffine(math.Pi / 2).Apply(Pt(1, 0))
	if got.DistanceTo(Pt(0, 1)) > 1e-12 {
		t.Errorf("rotate 90° = %v, want (0,1)", got)
	}
}

func TestAffineComposition(t *testing.T) {
	// Then: a.Then(b) applies a first.
	move := TranslateAffine(1, 0)
	scale := ScaleAffine(2, 2)
	p := Pt(1, 1)
	// Move then scale: (1,1) -> (2,1) -> (4,2).
	if got := move.Then(scale).Apply(p); !got.Equal(Pt(4, 2)) {
		t.Errorf("move.Then(scale) = %v, want (4,2)", got)
	}
	// Scale then move: (1,1) -> (2,2) -> (3,2).
	if got := scale.Then(move).Apply(p); !got.Equal(Pt(3, 2)) {
		t.Errorf("scale.Then(move) = %v, want (3,2)", got)
	}
}

func TestRotateAround(t *testing.T) {
	rot := RotateAround(math.Pi, Pt(2, 2))
	got := rot.Apply(Pt(3, 2))
	if got.DistanceTo(Pt(1, 2)) > 1e-12 {
		t.Errorf("rotate 180° around (2,2): %v, want (1,2)", got)
	}
	// The center is a fixed point.
	if rot.Apply(Pt(2, 2)).DistanceTo(Pt(2, 2)) > 1e-12 {
		t.Error("rotation center moved")
	}
}

func TestTransformGeometryTypes(t *testing.T) {
	tr := TranslateAffine(10, 20)
	cases := []Geometry{
		Pt(1, 1),
		MultiPoint{Points: []Point{Pt(0, 0)}},
		Line(Pt(0, 0), Pt(1, 0)),
		MultiLineString{Lines: []LineString{Line(Pt(0, 0), Pt(1, 0))}},
		Polygon{
			Shell: Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}},
			Holes: []Ring{{Coords: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}}},
		},
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1)}},
	}
	for _, g := range cases {
		moved := Transform(g, tr)
		if moved.GeomType() != g.GeomType() {
			t.Errorf("%v: type changed", g.GeomType())
		}
		wantEnv := g.Envelope()
		gotEnv := moved.Envelope()
		if gotEnv.MinX != wantEnv.MinX+10 || gotEnv.MinY != wantEnv.MinY+20 {
			t.Errorf("%v: envelope = %+v", g.GeomType(), gotEnv)
		}
	}
}

func TestRotationPreservesAreaAndRelations(t *testing.T) {
	// Property: rotation preserves polygon area.
	f := func(theta float64) bool {
		theta = math.Mod(theta, 2*math.Pi)
		if math.IsNaN(theta) {
			return true
		}
		poly := Rect(0, 0, 4, 2)
		rotated := Transform(poly, RotateAround(theta, Pt(2, 1))).(Polygon)
		return math.Abs(rotated.Area()-8) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
