package geom

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func wkbCases() []Geometry {
	return []Geometry{
		Pt(1, 2),
		Pt(-1.5e10, 2.25e-10),
		MultiPoint{Points: []Point{Pt(0, 0), Pt(3, 4)}},
		Line(Pt(0, 0), Pt(1, 1), Pt(2, 0)),
		MultiLineString{Lines: []LineString{
			Line(Pt(0, 0), Pt(1, 0)),
			Line(Pt(0, 1), Pt(1, 1), Pt(2, 2)),
		}},
		Rect(0, 0, 4, 4),
		Polygon{
			Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
			Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4)}}},
		},
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)}},
	}
}

func TestWKBRoundTrip(t *testing.T) {
	for _, g := range wkbCases() {
		data, err := MarshalWKB(g)
		if err != nil {
			t.Fatalf("%s: %v", g.WKT(), err)
		}
		back, err := UnmarshalWKB(data)
		if err != nil {
			t.Fatalf("%s: %v", g.WKT(), err)
		}
		if back.WKT() != g.WKT() {
			t.Errorf("round trip changed geometry:\n  %s\n  %s", g.WKT(), back.WKT())
		}
	}
}

func TestWKBKnownEncoding(t *testing.T) {
	// POINT (1 2) little-endian: 01 01000000 then two doubles.
	data, err := MarshalWKB(Pt(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 0, 0, 0}
	want = binary.LittleEndian.AppendUint64(want, math.Float64bits(1))
	want = binary.LittleEndian.AppendUint64(want, math.Float64bits(2))
	if !bytes.Equal(data, want) {
		t.Errorf("encoding = % x, want % x", data, want)
	}
}

func TestWKBBigEndianAccepted(t *testing.T) {
	// Hand-built big-endian POINT (3 4).
	var data []byte
	data = append(data, 0) // big-endian
	data = binary.BigEndian.AppendUint32(data, 1)
	data = binary.BigEndian.AppendUint64(data, math.Float64bits(3))
	data = binary.BigEndian.AppendUint64(data, math.Float64bits(4))
	g, err := UnmarshalWKB(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.(Point).Equal(Pt(3, 4)) {
		t.Errorf("decoded %v", g)
	}
}

func TestWKBErrors(t *testing.T) {
	good, _ := MarshalWKB(Rect(0, 0, 1, 1))
	cases := map[string][]byte{
		"empty":             {},
		"bad byte order":    {7},
		"truncated type":    {1, 1},
		"unsupported type":  append([]byte{1}, binary.LittleEndian.AppendUint32(nil, 99)...),
		"truncated payload": good[:len(good)-4],
		"trailing bytes":    append(append([]byte{}, good...), 0xFF),
	}
	for name, data := range cases {
		if _, err := UnmarshalWKB(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := MarshalWKB(nil); err == nil {
		t.Error("nil geometry should fail to marshal")
	}
	// A corrupt header claiming 2^24+ coordinates must fail fast, not
	// allocate.
	var huge []byte
	huge = append(huge, 1)
	huge = binary.LittleEndian.AppendUint32(huge, wkbLineString)
	huge = binary.LittleEndian.AppendUint32(huge, 1<<25)
	if _, err := UnmarshalWKB(huge); err == nil {
		t.Error("huge claimed count should fail")
	}
	// Claimed count larger than remaining bytes.
	var lying []byte
	lying = append(lying, 1)
	lying = binary.LittleEndian.AppendUint32(lying, wkbLineString)
	lying = binary.LittleEndian.AppendUint32(lying, 1000)
	lying = append(lying, make([]byte, 64)...)
	if _, err := UnmarshalWKB(lying); err == nil {
		t.Error("lying count should fail")
	}
	// Wrong member type inside a multi-geometry.
	var badMember []byte
	badMember = append(badMember, 1)
	badMember = binary.LittleEndian.AppendUint32(badMember, wkbMultiPoint)
	badMember = binary.LittleEndian.AppendUint32(badMember, 1)
	inner, _ := MarshalWKB(Line(Pt(0, 0), Pt(1, 1)))
	badMember = append(badMember, inner...)
	if _, err := UnmarshalWKB(badMember); err == nil {
		t.Error("line inside multipoint should fail")
	}
}

// FuzzUnmarshalWKB hardens the binary decoder against arbitrary input.
func FuzzUnmarshalWKB(f *testing.F) {
	for _, g := range wkbCases() {
		data, err := MarshalWKB(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalWKB(data)
		if err != nil {
			return
		}
		// Decoded geometries re-encode and re-decode stably.
		out, err := MarshalWKB(g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := UnmarshalWKB(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.WKT() != g.WKT() {
			t.Fatal("re-round-trip changed geometry")
		}
	})
}
