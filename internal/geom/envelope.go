package geom

import "math"

// Envelope is an axis-aligned bounding box. An envelope with MinX > MaxX is
// empty (see EmptyEnvelope).
type Envelope struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyEnvelope returns the canonical empty envelope, the identity for
// Union.
func EmptyEnvelope() Envelope {
	return Envelope{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewEnvelope constructs an envelope from two corner points given in any
// order.
func NewEnvelope(a, b Point) Envelope {
	return Envelope{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// IsEmpty reports whether the envelope contains no points.
func (e Envelope) IsEmpty() bool { return e.MinX > e.MaxX || e.MinY > e.MaxY }

// Width returns the X extent, or 0 when empty.
func (e Envelope) Width() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxX - e.MinX
}

// Height returns the Y extent, or 0 when empty.
func (e Envelope) Height() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxY - e.MinY
}

// Area returns the covered area, or 0 when empty.
func (e Envelope) Area() float64 { return e.Width() * e.Height() }

// Perimeter returns half the boundary length (width + height), the usual
// R-tree enlargement metric.
func (e Envelope) Perimeter() float64 { return e.Width() + e.Height() }

// Center returns the midpoint of the envelope.
func (e Envelope) Center() Point {
	return Point{(e.MinX + e.MaxX) / 2, (e.MinY + e.MaxY) / 2}
}

// ExpandToPoint returns the smallest envelope covering both e and p.
func (e Envelope) ExpandToPoint(p Point) Envelope {
	return Envelope{
		MinX: math.Min(e.MinX, p.X), MinY: math.Min(e.MinY, p.Y),
		MaxX: math.Max(e.MaxX, p.X), MaxY: math.Max(e.MaxY, p.Y),
	}
}

// Union returns the smallest envelope covering both operands.
func (e Envelope) Union(o Envelope) Envelope {
	if e.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return e
	}
	return Envelope{
		MinX: math.Min(e.MinX, o.MinX), MinY: math.Min(e.MinY, o.MinY),
		MaxX: math.Max(e.MaxX, o.MaxX), MaxY: math.Max(e.MaxY, o.MaxY),
	}
}

// Intersects reports whether the two envelopes share at least one point
// (boundary contact counts).
func (e Envelope) Intersects(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MaxX && o.MinX <= e.MaxX &&
		e.MinY <= o.MaxY && o.MinY <= e.MaxY
}

// Contains reports whether o lies entirely inside e (boundary contact
// allowed).
func (e Envelope) Contains(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MinX && o.MaxX <= e.MaxX &&
		e.MinY <= o.MinY && o.MaxY <= e.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of e.
func (e Envelope) ContainsPoint(p Point) bool {
	return !e.IsEmpty() &&
		e.MinX <= p.X && p.X <= e.MaxX &&
		e.MinY <= p.Y && p.Y <= e.MaxY
}

// Buffer returns the envelope grown by d on every side. A negative d
// shrinks the envelope and may produce an empty one.
func (e Envelope) Buffer(d float64) Envelope {
	if e.IsEmpty() {
		return e
	}
	return Envelope{e.MinX - d, e.MinY - d, e.MaxX + d, e.MaxY + d}
}

// Distance returns the minimal distance between the two envelopes, 0 when
// they intersect.
func (e Envelope) Distance(o Envelope) float64 {
	if e.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	var dx, dy float64
	switch {
	case o.MinX > e.MaxX:
		dx = o.MinX - e.MaxX
	case e.MinX > o.MaxX:
		dx = e.MinX - o.MaxX
	}
	switch {
	case o.MinY > e.MaxY:
		dy = o.MinY - e.MaxY
	case e.MinY > o.MaxY:
		dy = e.MinY - o.MaxY
	}
	return math.Hypot(dx, dy)
}
