package geom

import (
	"math"
	"math/rand"
	"testing"
)

// benchPolygon builds a regular n-gon for relate-path benchmarks.
func benchPolygon(n int, cx, cy, r float64) Polygon {
	coords := make([]Point, n)
	for i := range coords {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = Pt(cx+r*math.Cos(theta), cy+r*math.Sin(theta))
	}
	return Polygon{Shell: Ring{Coords: coords}}
}

func BenchmarkLocateInPolygon(b *testing.B) {
	poly := benchPolygon(64, 0, 0, 10)
	pts := []Point{Pt(0, 0), Pt(9, 0), Pt(20, 20), Pt(5, 5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pts {
			LocateInPolygon(p, poly)
		}
	}
}

func BenchmarkDistancePolygons(b *testing.B) {
	a := benchPolygon(32, 0, 0, 10)
	c := benchPolygon(32, 30, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(a, c)
	}
}

func BenchmarkNodeSoupsOverlapping(b *testing.B) {
	a := BuildSoup(benchPolygon(48, 0, 0, 10))
	c := BuildSoup(benchPolygon(48, 8, 0, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeSoups(a, c)
	}
}

func BenchmarkConvexHull(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvexHull(pts)
	}
}

func BenchmarkValidatePolygon(b *testing.B) {
	poly := benchPolygon(64, 0, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(poly); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseWKT(b *testing.B) {
	wkt := benchPolygon(64, 0, 0, 10).WKT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseWKT(wkt); err != nil {
			b.Fatal(err)
		}
	}
}
