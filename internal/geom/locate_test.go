package geom

import (
	"testing"
	"testing/quick"
)

func TestLocationString(t *testing.T) {
	if Interior.String() != "interior" || Boundary.String() != "boundary" ||
		Exterior.String() != "exterior" {
		t.Error("Location strings wrong")
	}
	if Location(9).String() != "geom.Location(9)" {
		t.Error("unknown location string wrong")
	}
}

func TestLocateInRing(t *testing.T) {
	sq := Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}}
	cases := []struct {
		p    Point
		want Location
	}{
		{Pt(2, 2), Interior},
		{Pt(0, 0), Boundary},  // corner
		{Pt(2, 0), Boundary},  // edge
		{Pt(4, 4), Boundary},  // far corner
		{Pt(5, 2), Exterior},  // right of
		{Pt(-1, 2), Exterior}, // left of
		{Pt(2, 5), Exterior},
		{Pt(2, -1), Exterior},
	}
	for _, tc := range cases {
		if got := LocateInRing(tc.p, sq); got != tc.want {
			t.Errorf("LocateInRing(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if LocateInRing(Pt(0, 0), Ring{Coords: []Point{Pt(0, 0), Pt(1, 1)}}) != Exterior {
		t.Error("degenerate ring should locate everything exterior")
	}
}

func TestLocateInRingConcave(t *testing.T) {
	// A "C" shape opening to the right.
	c := Ring{Coords: []Point{
		Pt(0, 0), Pt(6, 0), Pt(6, 2), Pt(2, 2), Pt(2, 4), Pt(6, 4), Pt(6, 6), Pt(0, 6),
	}}
	if got := LocateInRing(Pt(4, 3), c); got != Exterior {
		t.Errorf("notch point = %v, want exterior", got)
	}
	if got := LocateInRing(Pt(1, 3), c); got != Interior {
		t.Errorf("spine point = %v, want interior", got)
	}
	if got := LocateInRing(Pt(4, 1), c); got != Interior {
		t.Errorf("lower arm point = %v, want interior", got)
	}
}

func TestLocateInRingVertexRay(t *testing.T) {
	// The +X ray from the query point passes exactly through a vertex of
	// the diamond; the half-open rule must count it once.
	diamond := Ring{Coords: []Point{Pt(2, 0), Pt(4, 2), Pt(2, 4), Pt(0, 2)}}
	if got := LocateInRing(Pt(1, 2), diamond); got != Interior {
		t.Errorf("point left of vertex = %v, want interior", got)
	}
	if got := LocateInRing(Pt(-1, 2), diamond); got != Exterior {
		t.Errorf("point outside, ray through two vertices = %v, want exterior", got)
	}
}

func TestLocateInPolygonWithHole(t *testing.T) {
	poly := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(3, 3), Pt(7, 3), Pt(7, 7), Pt(3, 7)}}},
	}
	cases := []struct {
		p    Point
		want Location
	}{
		{Pt(1, 1), Interior},
		{Pt(5, 5), Exterior}, // inside the hole
		{Pt(3, 5), Boundary}, // on the hole ring
		{Pt(0, 5), Boundary}, // on the shell
		{Pt(11, 5), Exterior},
	}
	for _, tc := range cases {
		if got := LocateInPolygon(tc.p, poly); got != tc.want {
			t.Errorf("LocateInPolygon(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestLocateOnLineString(t *testing.T) {
	l := Line(Pt(0, 0), Pt(4, 0), Pt(4, 4))
	cases := []struct {
		p    Point
		want Location
	}{
		{Pt(0, 0), Boundary}, // start
		{Pt(4, 4), Boundary}, // end
		{Pt(2, 0), Interior},
		{Pt(4, 0), Interior}, // internal vertex
		{Pt(2, 2), Exterior},
	}
	for _, tc := range cases {
		if got := LocateOnLineString(tc.p, l); got != tc.want {
			t.Errorf("LocateOnLineString(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Closed linestring has no boundary.
	ring := Line(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 0))
	if got := LocateOnLineString(Pt(0, 0), ring); got != Interior {
		t.Errorf("closed line start = %v, want interior", got)
	}
	if got := LocateOnLineString(Pt(1, 1), LineString{}); got != Exterior {
		t.Errorf("empty line = %v, want exterior", got)
	}
}

func TestLocateGeneric(t *testing.T) {
	if Locate(Pt(1, 1), Pt(1, 1)) != Interior {
		t.Error("point self-locate")
	}
	if Locate(Pt(1, 2), Pt(1, 1)) != Exterior {
		t.Error("point other-locate")
	}
	mp := MultiPoint{Points: []Point{Pt(0, 0), Pt(2, 2)}}
	if Locate(Pt(2, 2), mp) != Interior || Locate(Pt(1, 1), mp) != Exterior {
		t.Error("multipoint locate")
	}
	mpoly := MultiPolygon{Polygons: []Polygon{Rect(0, 0, 2, 2), Rect(4, 0, 6, 2)}}
	if Locate(Pt(5, 1), mpoly) != Interior {
		t.Error("multipolygon interior")
	}
	if Locate(Pt(4, 1), mpoly) != Boundary {
		t.Error("multipolygon boundary")
	}
	if Locate(Pt(3, 1), mpoly) != Exterior {
		t.Error("multipolygon exterior")
	}
}

func TestLocateMultiLineMod2(t *testing.T) {
	// Two lines sharing an endpoint: the shared point occurs twice, so by
	// the mod-2 rule it is interior to the multilinestring.
	ml := MultiLineString{Lines: []LineString{
		Line(Pt(0, 0), Pt(2, 0)),
		Line(Pt(2, 0), Pt(4, 0)),
	}}
	if got := Locate(Pt(2, 0), ml); got != Interior {
		t.Errorf("shared endpoint = %v, want interior (mod-2)", got)
	}
	if got := Locate(Pt(0, 0), ml); got != Boundary {
		t.Errorf("free endpoint = %v, want boundary", got)
	}
	if got := Locate(Pt(1, 0), ml); got != Interior {
		t.Errorf("segment interior = %v, want interior", got)
	}
	// Three lines meeting at a point: odd count, boundary.
	ml.Lines = append(ml.Lines, Line(Pt(2, 0), Pt(2, 5)))
	if got := Locate(Pt(2, 0), ml); got != Boundary {
		t.Errorf("triple junction = %v, want boundary (mod-2)", got)
	}
}

func TestInteriorPoint(t *testing.T) {
	cases := []Geometry{
		Pt(3, 3),
		MultiPoint{Points: []Point{Pt(1, 1)}},
		Line(Pt(0, 0), Pt(4, 0)),
		MultiLineString{Lines: []LineString{Line(Pt(0, 0), Pt(4, 0))}},
		Rect(0, 0, 4, 4),
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 4, 4)}},
	}
	for _, g := range cases {
		p, ok := InteriorPoint(g)
		if !ok {
			t.Errorf("%s: no interior point", g.GeomType())
			continue
		}
		if Locate(p, g) == Exterior {
			t.Errorf("%s: interior point %v is exterior", g.GeomType(), p)
		}
	}
	if _, ok := InteriorPoint(MultiPoint{}); ok {
		t.Error("empty multipoint should have no interior point")
	}
	if _, ok := InteriorPoint(LineString{}); ok {
		t.Error("empty line should have no interior point")
	}
}

func TestInteriorPointConcaveAndHoled(t *testing.T) {
	// U-shaped polygon whose centroid falls in the notch.
	u := Poly(
		Pt(0, 0), Pt(6, 0), Pt(6, 6), Pt(4, 6), Pt(4, 2), Pt(2, 2), Pt(2, 6), Pt(0, 6),
	)
	p, ok := InteriorPoint(u)
	if !ok {
		t.Fatal("no interior point for U polygon")
	}
	if LocateInPolygon(p, u) != Interior {
		t.Errorf("U interior point %v not interior", p)
	}
	// Donut whose centroid falls in the hole.
	donut := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(8, 2), Pt(8, 8), Pt(2, 8)}}},
	}
	p, ok = InteriorPoint(donut)
	if !ok {
		t.Fatal("no interior point for donut")
	}
	if LocateInPolygon(p, donut) != Interior {
		t.Errorf("donut interior point %v not interior", p)
	}
}

func TestLocateInRingPropertyGrid(t *testing.T) {
	// Property: for a random convex quadrilateral-ish ring (rectangle),
	// LocateInRing agrees with direct coordinate comparison.
	f := func(px, py int8, x1, y1, x2, y2 int8) bool {
		minX, maxX := float64(x1), float64(x2)
		if minX > maxX {
			minX, maxX = maxX, minX
		}
		minY, maxY := float64(y1), float64(y2)
		if minY > maxY {
			minY, maxY = maxY, minY
		}
		if maxX-minX < 1 || maxY-minY < 1 {
			return true
		}
		r := Ring{Coords: []Point{
			Pt(minX, minY), Pt(maxX, minY), Pt(maxX, maxY), Pt(minX, maxY),
		}}
		p := Pt(float64(px), float64(py))
		got := LocateInRing(p, r)
		var want Location
		switch {
		case p.X > minX && p.X < maxX && p.Y > minY && p.Y < maxY:
			want = Interior
		case p.X >= minX && p.X <= maxX && p.Y >= minY && p.Y <= maxY:
			want = Boundary
		default:
			want = Exterior
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
