package geom

import "math"

// Distance returns the minimal Euclidean distance between the point-sets of
// two geometries. Geometries that intersect (including touching or
// containment) have distance 0. Empty geometries are at infinite distance.
func Distance(a, b Geometry) float64 {
	if a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	sa, sb := BuildSoup(a), BuildSoup(b)

	// Containment short-circuits: any representative point of one
	// geometry inside the other means distance 0.
	if sa.HasArea {
		if anyPointInside(pointSamples(sb), a) {
			return 0
		}
	}
	if sb.HasArea {
		if anyPointInside(pointSamples(sa), b) {
			return 0
		}
	}

	best := math.Inf(1)
	// Segment-to-segment distances (0 on intersection).
	for _, ta := range sa.Segments {
		for _, tb := range sb.Segments {
			if d := ta.Seg.DistanceToSegment(tb.Seg); d < best {
				best = d
				if best == 0 {
					return 0
				}
			}
		}
	}
	// Point-to-segment and point-to-point distances.
	for _, p := range sa.InteriorPoints {
		for _, tb := range sb.Segments {
			if d := tb.Seg.DistanceToPoint(p); d < best {
				best = d
			}
		}
		for _, q := range sb.InteriorPoints {
			if d := p.DistanceTo(q); d < best {
				best = d
			}
		}
	}
	for _, q := range sb.InteriorPoints {
		for _, ta := range sa.Segments {
			if d := ta.Seg.DistanceToPoint(q); d < best {
				best = d
			}
		}
	}
	if best <= Eps {
		return 0
	}
	return best
}

// pointSamples returns representative points of a soup: isolated points and
// one vertex per segment. Enough to decide containment against an area.
func pointSamples(s *Soup) []Point {
	pts := make([]Point, 0, len(s.InteriorPoints)+len(s.Segments))
	pts = append(pts, s.InteriorPoints...)
	for _, ts := range s.Segments {
		pts = append(pts, ts.Seg.A)
	}
	return pts
}

// anyPointInside reports whether any of the points is not in the exterior
// of g.
func anyPointInside(pts []Point, g Geometry) bool {
	env := g.Envelope().Buffer(Eps)
	for _, p := range pts {
		if !env.ContainsPoint(p) {
			continue
		}
		if Locate(p, g) != Exterior {
			return true
		}
	}
	return false
}

// Intersects reports whether the point-sets of a and b share at least one
// point. It is cheaper than a full DE-9IM relate.
func Intersects(a, b Geometry) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Envelope().Buffer(Eps).Intersects(b.Envelope()) {
		return false
	}
	return Distance(a, b) == 0
}
