package geom

import "testing"

// FuzzParseWKT hardens the WKT parser: arbitrary input must never panic,
// and successfully parsed geometries must round-trip through their own
// WKT rendering.
func FuzzParseWKT(f *testing.F) {
	seeds := []string{
		"POINT (1 2)",
		"POINT EMPTY",
		"MULTIPOINT ((1 1), (2 2))",
		"MULTIPOINT (1 1, 2 2)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"MULTILINESTRING ((0 0, 1 0), (0 1, 1 1))",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
		"POINT (1e10 -2.5e-3)",
		"  point\t( 7   8 ) ",
		"POLYGON ((",
		"POINT (a b)",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseWKT(s)
		if err != nil {
			return
		}
		wkt := g.WKT()
		back, err := ParseWKT(wkt)
		if err != nil {
			t.Fatalf("rendered WKT does not re-parse: %q -> %q: %v", s, wkt, err)
		}
		if back.WKT() != wkt {
			t.Fatalf("WKT not a fixed point: %q -> %q", wkt, back.WKT())
		}
	})
}

// FuzzRelateRectangles stresses the DE-9IM machinery with arbitrary
// rectangle pairs: the matrix diagonal entries must stay within their
// dimensional bounds and transposition must hold.
func FuzzRelateRectangles(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 4.0, 2.0, 2.0, 6.0, 6.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 2.0, 1.0)
	f.Fuzz(func(t *testing.T, ax, ay, aw, ah, bx, by, bw, bh float64) {
		clamp := func(v float64) float64 {
			if v != v || v > 1e6 || v < -1e6 {
				return 0
			}
			return v
		}
		size := func(v float64) float64 {
			v = clamp(v)
			if v < 0 {
				v = -v
			}
			return v + 0.5
		}
		a := Rect(clamp(ax), clamp(ay), clamp(ax)+size(aw), clamp(ay)+size(ah))
		b := Rect(clamp(bx), clamp(by), clamp(bx)+size(bw), clamp(by)+size(bh))
		// Must not panic; Locate of each centroid must be consistent
		// with distance 0.
		if Locate(a.Centroid(), a) != Interior {
			t.Fatal("centroid of a rectangle must be interior")
		}
		if Distance(a, b) == 0 != Intersects(a, b) {
			t.Fatal("Distance and Intersects disagree")
		}
	})
}
