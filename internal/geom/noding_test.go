package geom

import (
	"math"
	"testing"
)

func TestBuildSoupPolygon(t *testing.T) {
	poly := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}},
		Holes: []Ring{{Coords: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}}},
	}
	s := BuildSoup(poly)
	if !s.HasArea || s.HasLine || s.HasPoint {
		t.Errorf("flags wrong: %+v", s)
	}
	if len(s.Segments) != 8 {
		t.Errorf("segments = %d, want 8 (4 shell + 4 hole)", len(s.Segments))
	}
	for _, ts := range s.Segments {
		if ts.Role != RoleRingBoundary {
			t.Error("polygon segment not tagged as ring boundary")
		}
	}
	if len(s.BoundaryPoints) != 0 {
		t.Error("polygon should have no point boundary")
	}
}

func TestBuildSoupLines(t *testing.T) {
	l := Line(Pt(0, 0), Pt(2, 0), Pt(2, 2))
	s := BuildSoup(l)
	if s.HasArea || !s.HasLine || s.HasPoint {
		t.Errorf("flags wrong: %+v", s)
	}
	if len(s.Segments) != 2 {
		t.Errorf("segments = %d, want 2", len(s.Segments))
	}
	if len(s.BoundaryPoints) != 2 {
		t.Errorf("boundary points = %d, want 2", len(s.BoundaryPoints))
	}
	// Closed line: empty boundary.
	closed := Line(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 0))
	s = BuildSoup(closed)
	if len(s.BoundaryPoints) != 0 {
		t.Errorf("closed line boundary points = %d, want 0", len(s.BoundaryPoints))
	}
	// Two lines sharing an endpoint: mod-2 removes the shared point.
	ml := MultiLineString{Lines: []LineString{
		Line(Pt(0, 0), Pt(2, 0)),
		Line(Pt(2, 0), Pt(4, 0)),
	}}
	s = BuildSoup(ml)
	if len(s.BoundaryPoints) != 2 {
		t.Fatalf("multiline boundary points = %d, want 2", len(s.BoundaryPoints))
	}
	for _, p := range s.BoundaryPoints {
		if p.Equal(Pt(2, 0)) {
			t.Error("shared endpoint must not be a boundary point (mod-2)")
		}
	}
}

func TestBuildSoupPoints(t *testing.T) {
	s := BuildSoup(MultiPoint{Points: []Point{Pt(1, 1), Pt(2, 2)}})
	if !s.HasPoint || s.HasLine || s.HasArea {
		t.Errorf("flags wrong: %+v", s)
	}
	if len(s.InteriorPoints) != 2 {
		t.Errorf("interior points = %d", len(s.InteriorPoints))
	}
	s = BuildSoup(Pt(1, 1))
	if !s.HasPoint || len(s.InteriorPoints) != 1 {
		t.Error("point soup wrong")
	}
}

func TestNodeSoupsCrossing(t *testing.T) {
	a := BuildSoup(Line(Pt(0, 0), Pt(4, 0)))
	b := BuildSoup(Line(Pt(2, -2), Pt(2, 2)))
	res := NodeSoups(a, b)
	if len(res.Nodes) != 1 || !res.Nodes[0].Equal(Pt(2, 0)) {
		t.Fatalf("nodes = %+v, want [(2,0)]", res.Nodes)
	}
	if len(res.SubA) != 2 {
		t.Errorf("subA = %d pieces, want 2", len(res.SubA))
	}
	if len(res.SubB) != 2 {
		t.Errorf("subB = %d pieces, want 2", len(res.SubB))
	}
	// The pieces must partition the original segment.
	var total float64
	for _, ts := range res.SubA {
		total += ts.Seg.Length()
	}
	if math.Abs(total-4) > 1e-9 {
		t.Errorf("subA total length = %v, want 4", total)
	}
}

func TestNodeSoupsNoIntersection(t *testing.T) {
	a := BuildSoup(Line(Pt(0, 0), Pt(1, 0)))
	b := BuildSoup(Line(Pt(0, 5), Pt(1, 5)))
	res := NodeSoups(a, b)
	if len(res.Nodes) != 0 {
		t.Errorf("nodes = %+v, want none", res.Nodes)
	}
	if len(res.SubA) != 1 || len(res.SubB) != 1 {
		t.Error("segments should pass through unsplit")
	}
}

func TestNodeSoupsOverlap(t *testing.T) {
	a := BuildSoup(Line(Pt(0, 0), Pt(4, 0)))
	b := BuildSoup(Line(Pt(2, 0), Pt(6, 0)))
	res := NodeSoups(a, b)
	// Overlap endpoints (2,0) and (4,0) become nodes.
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %+v, want 2", res.Nodes)
	}
	// a splits into [0,2] and [2,4]; b into [2,4] and [4,6].
	if len(res.SubA) != 2 || len(res.SubB) != 2 {
		t.Errorf("pieces: subA=%d subB=%d, want 2 and 2", len(res.SubA), len(res.SubB))
	}
}

func TestNodeSoupsRingCrossing(t *testing.T) {
	// Two overlapping squares: each ring is cut twice.
	a := BuildSoup(Rect(0, 0, 4, 4))
	b := BuildSoup(Rect(2, 2, 6, 6))
	res := NodeSoups(a, b)
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2 (boundary crossings)", len(res.Nodes))
	}
	// Each square's 4 edges gain 2 cuts total -> 6 pieces.
	if len(res.SubA) != 6 || len(res.SubB) != 6 {
		t.Errorf("pieces: subA=%d subB=%d, want 6 and 6", len(res.SubA), len(res.SubB))
	}
	// All pieces keep the ring role.
	for _, ts := range append(res.SubA, res.SubB...) {
		if ts.Role != RoleRingBoundary {
			t.Error("ring piece lost its role")
		}
	}
}

func TestNodeSoupsVertexTouch(t *testing.T) {
	// Squares touching at a single corner.
	a := BuildSoup(Rect(0, 0, 2, 2))
	b := BuildSoup(Rect(2, 2, 4, 4))
	res := NodeSoups(a, b)
	if len(res.Nodes) != 1 || !res.Nodes[0].Equal(Pt(2, 2)) {
		t.Fatalf("nodes = %+v, want single corner", res.Nodes)
	}
}

func TestParamOnClamps(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	if got := paramOn(s, Pt(2, 0)); got != 0.5 {
		t.Errorf("paramOn mid = %v", got)
	}
	if got := paramOn(s, Pt(-1, 0)); got != 0 {
		t.Errorf("paramOn before = %v", got)
	}
	if got := paramOn(s, Pt(9, 0)); got != 1 {
		t.Errorf("paramOn after = %v", got)
	}
	if got := paramOn(Segment{Pt(1, 1), Pt(1, 1)}, Pt(5, 5)); got != 0 {
		t.Errorf("paramOn degenerate = %v", got)
	}
}
