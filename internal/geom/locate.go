package geom

import "fmt"

// Location classifies a point against the point-set of a geometry, in the
// sense of the 9-intersection model: interior, boundary, or exterior.
type Location int

// Point-set locations.
const (
	Exterior Location = iota
	Boundary
	Interior
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case Exterior:
		return "exterior"
	case Boundary:
		return "boundary"
	case Interior:
		return "interior"
	}
	return fmt.Sprintf("geom.Location(%d)", int(l))
}

// LocateInRing classifies p against the closed region bounded by ring r
// using the crossing-number rule, with an explicit on-boundary check first.
func LocateInRing(p Point, r Ring) Location {
	n := len(r.Coords)
	if n < 3 {
		return Exterior
	}
	if !r.Envelope().Buffer(Eps).ContainsPoint(p) {
		return Exterior
	}
	for i := 0; i < n; i++ {
		if r.Segment(i).OnSegment(p) {
			return Boundary
		}
	}
	// Ray cast towards +X. Count crossings, handling vertices on the ray
	// by the standard half-open rule: an edge crosses when exactly one of
	// its endpoints is strictly above the ray.
	inside := false
	for i := 0; i < n; i++ {
		a := r.Coords[i]
		b := r.Coords[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xAt := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if xAt > p.X {
				inside = !inside
			}
		}
	}
	if inside {
		return Interior
	}
	return Exterior
}

// LocateInPolygon classifies p against polygon poly, accounting for holes:
// a point strictly inside a hole is in the polygon's exterior, and a point
// on a hole ring is on the polygon's boundary.
func LocateInPolygon(p Point, poly Polygon) Location {
	switch LocateInRing(p, poly.Shell) {
	case Exterior:
		return Exterior
	case Boundary:
		return Boundary
	}
	for _, h := range poly.Holes {
		switch LocateInRing(p, h) {
		case Interior:
			return Exterior
		case Boundary:
			return Boundary
		}
	}
	return Interior
}

// LocateOnLineString classifies p against linestring l. The boundary of a
// non-closed linestring is its two endpoints; closed linestrings have an
// empty boundary.
func LocateOnLineString(p Point, l LineString) Location {
	if len(l.Coords) == 0 {
		return Exterior
	}
	on := false
	for i := 0; i < l.NumSegments(); i++ {
		if l.Segment(i).OnSegment(p) {
			on = true
			break
		}
	}
	if !on {
		return Exterior
	}
	if l.IsClosed() {
		return Interior
	}
	if p.DistanceTo(l.Coords[0]) <= Eps || p.DistanceTo(l.Coords[len(l.Coords)-1]) <= Eps {
		return Boundary
	}
	return Interior
}

// Locate classifies point p against an arbitrary geometry. For collections
// the component locations combine by the point-set rules: interior of any
// component wins over boundary, and for multilinestrings an endpoint shared
// by an even number of member lines is interior (the mod-2 rule).
func Locate(p Point, g Geometry) Location {
	switch t := g.(type) {
	case Point:
		if p.DistanceTo(t) <= Eps {
			return Interior
		}
		return Exterior
	case MultiPoint:
		for _, q := range t.Points {
			if p.DistanceTo(q) <= Eps {
				return Interior
			}
		}
		return Exterior
	case LineString:
		return LocateOnLineString(p, t)
	case MultiLineString:
		return locateOnMultiLine(p, t)
	case Polygon:
		return LocateInPolygon(p, t)
	case MultiPolygon:
		loc := Exterior
		for _, poly := range t.Polygons {
			switch LocateInPolygon(p, poly) {
			case Interior:
				return Interior
			case Boundary:
				loc = Boundary
			}
		}
		return loc
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// locateOnMultiLine applies the mod-2 boundary rule across member lines.
func locateOnMultiLine(p Point, m MultiLineString) Location {
	endpointHits := 0
	interiorHit := false
	for _, l := range m.Lines {
		switch LocateOnLineString(p, l) {
		case Interior:
			interiorHit = true
		case Boundary:
			endpointHits++
		}
	}
	if endpointHits%2 == 1 {
		return Boundary
	}
	if interiorHit || endpointHits > 0 {
		return Interior
	}
	return Exterior
}

// InteriorPoint returns a point guaranteed to lie in the interior of the
// geometry (for polygons possibly away from the centroid when the centroid
// falls outside, e.g. for C-shaped or holed polygons). The second return
// value is false only for empty geometries.
func InteriorPoint(g Geometry) (Point, bool) {
	switch t := g.(type) {
	case Point:
		return t, true
	case MultiPoint:
		if len(t.Points) == 0 {
			return Point{}, false
		}
		return t.Points[0], true
	case LineString:
		if t.NumSegments() == 0 {
			if len(t.Coords) == 1 {
				return t.Coords[0], true
			}
			return Point{}, false
		}
		return t.Segment(t.NumSegments() / 2).Midpoint(), true
	case MultiLineString:
		for _, l := range t.Lines {
			if p, ok := InteriorPoint(l); ok {
				return p, true
			}
		}
		return Point{}, false
	case Polygon:
		return polygonInteriorPoint(t)
	case MultiPolygon:
		for _, p := range t.Polygons {
			if ip, ok := polygonInteriorPoint(p); ok {
				return ip, true
			}
		}
		return Point{}, false
	}
	panic(fmt.Sprintf("geom: unknown geometry type %T", g))
}

// polygonInteriorPoint returns a point strictly inside the polygon. It
// tries the centroid first and falls back to a horizontal scanline through
// the middle of the envelope, taking the midpoint of the widest inside
// span.
func polygonInteriorPoint(poly Polygon) (Point, bool) {
	if poly.IsEmpty() {
		return Point{}, false
	}
	if c := poly.Centroid(); LocateInPolygon(c, poly) == Interior {
		return c, true
	}
	env := poly.Envelope()
	// Scan a few horizontal lines; avoid lines through vertices by using
	// irrational-ish offsets within the envelope.
	for _, f := range []float64{0.5, 0.382, 0.618, 0.271, 0.729, 0.137, 0.863} {
		y := env.MinY + f*(env.MaxY-env.MinY)
		if p, ok := scanlineInteriorPoint(poly, y); ok {
			return p, true
		}
	}
	// Last resort: sample segment midpoints nudged inwards.
	for _, r := range poly.Rings() {
		for i := 0; i < r.NumSegments(); i++ {
			seg := r.Segment(i)
			mid := seg.Midpoint()
			d := seg.B.Sub(seg.A)
			n := Point{-d.Y, d.X}
			scale := Eps * 1e3 / (1 + n.DistanceTo(Point{}))
			for _, sign := range []float64{1, -1} {
				cand := mid.Add(n.Scale(sign * scale))
				if LocateInPolygon(cand, poly) == Interior {
					return cand, true
				}
			}
		}
	}
	return Point{}, false
}

// scanlineInteriorPoint intersects the horizontal line at height y with all
// polygon rings and returns the midpoint of the widest interior span.
func scanlineInteriorPoint(poly Polygon, y float64) (Point, bool) {
	var xs []float64
	for _, r := range poly.Rings() {
		n := len(r.Coords)
		for i := 0; i < n; i++ {
			a := r.Coords[i]
			b := r.Coords[(i+1)%n]
			if (a.Y > y) != (b.Y > y) {
				xs = append(xs, a.X+(y-a.Y)/(b.Y-a.Y)*(b.X-a.X))
			}
		}
	}
	if len(xs) < 2 {
		return Point{}, false
	}
	sortFloat64s(xs)
	best := Point{}
	bestWidth := 0.0
	for i := 0; i+1 < len(xs); i += 2 {
		w := xs[i+1] - xs[i]
		if w > bestWidth {
			mid := Point{(xs[i] + xs[i+1]) / 2, y}
			if LocateInPolygon(mid, poly) == Interior {
				best = mid
				bestWidth = w
			}
		}
	}
	if bestWidth > 0 {
		return best, true
	}
	return Point{}, false
}

// sortFloat64s is an insertion sort: scanline crossing lists are tiny, so
// this avoids pulling in sort for a hot path.
func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
