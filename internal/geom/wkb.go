package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Well-known binary (WKB) encoding, the OGC interchange format spatial
// databases emit (PostGIS ST_AsBinary). Little-endian encoding is
// produced; both byte orders are accepted on read.

// WKB geometry type codes.
const (
	wkbPoint           uint32 = 1
	wkbLineString      uint32 = 2
	wkbPolygon         uint32 = 3
	wkbMultiPoint      uint32 = 4
	wkbMultiLineString uint32 = 5
	wkbMultiPolygon    uint32 = 6
)

// MarshalWKB encodes a geometry as little-endian WKB.
func MarshalWKB(g Geometry) ([]byte, error) {
	if g == nil {
		return nil, fmt.Errorf("geom: cannot marshal nil geometry")
	}
	w := &wkbWriter{}
	if err := w.geometry(g); err != nil {
		return nil, err
	}
	return w.buf, nil
}

type wkbWriter struct {
	buf []byte
}

func (w *wkbWriter) byteOrder()      { w.buf = append(w.buf, 1) } // little-endian
func (w *wkbWriter) uint32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wkbWriter) float64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *wkbWriter) point(p Point) {
	w.float64(p.X)
	w.float64(p.Y)
}

func (w *wkbWriter) coords(ps []Point) {
	w.uint32(uint32(len(ps)))
	for _, p := range ps {
		w.point(p)
	}
}

// ring writes a ring with the explicit closing coordinate WKB requires.
// Empty rings encode as zero coordinates.
func (w *wkbWriter) ring(r Ring) {
	if len(r.Coords) == 0 {
		w.uint32(0)
		return
	}
	w.uint32(uint32(len(r.Coords) + 1))
	for _, p := range r.Coords {
		w.point(p)
	}
	w.point(r.Coords[0])
}

func (w *wkbWriter) geometry(g Geometry) error {
	w.byteOrder()
	switch t := g.(type) {
	case Point:
		w.uint32(wkbPoint)
		w.point(t)
	case LineString:
		w.uint32(wkbLineString)
		w.coords(t.Coords)
	case Polygon:
		w.uint32(wkbPolygon)
		if t.IsEmpty() {
			w.uint32(0)
			return nil
		}
		w.uint32(uint32(1 + len(t.Holes)))
		w.ring(t.Shell)
		for _, h := range t.Holes {
			w.ring(h)
		}
	case MultiPoint:
		w.uint32(wkbMultiPoint)
		w.uint32(uint32(len(t.Points)))
		for _, p := range t.Points {
			if err := w.geometry(p); err != nil {
				return err
			}
		}
	case MultiLineString:
		w.uint32(wkbMultiLineString)
		w.uint32(uint32(len(t.Lines)))
		for _, l := range t.Lines {
			if err := w.geometry(l); err != nil {
				return err
			}
		}
	case MultiPolygon:
		w.uint32(wkbMultiPolygon)
		w.uint32(uint32(len(t.Polygons)))
		for _, p := range t.Polygons {
			if err := w.geometry(p); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("geom: cannot marshal %T as WKB", g)
	}
	return nil
}

// UnmarshalWKB decodes a WKB geometry (either byte order). Trailing bytes
// are an error.
func UnmarshalWKB(data []byte) (Geometry, error) {
	r := &wkbReader{buf: data}
	g, err := r.geometry()
	if err != nil {
		return nil, fmt.Errorf("geom: decoding WKB: %w", err)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("geom: decoding WKB: %d trailing bytes", len(data)-r.pos)
	}
	return g, nil
}

type wkbReader struct {
	buf []byte
	pos int
}

func (r *wkbReader) order() (binary.ByteOrder, error) {
	if r.pos >= len(r.buf) {
		return nil, fmt.Errorf("truncated at byte order")
	}
	b := r.buf[r.pos]
	r.pos++
	switch b {
	case 0:
		return binary.BigEndian, nil
	case 1:
		return binary.LittleEndian, nil
	}
	return nil, fmt.Errorf("invalid byte order %d", b)
}

func (r *wkbReader) uint32(o binary.ByteOrder) (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, fmt.Errorf("truncated uint32")
	}
	v := o.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *wkbReader) float64(o binary.ByteOrder) (float64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, fmt.Errorf("truncated float64")
	}
	v := math.Float64frombits(o.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *wkbReader) point(o binary.ByteOrder) (Point, error) {
	x, err := r.float64(o)
	if err != nil {
		return Point{}, err
	}
	y, err := r.float64(o)
	if err != nil {
		return Point{}, err
	}
	// Reject non-finite coordinates: no valid producer emits them, and
	// NaN breaks coordinate equality downstream (ring closing).
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return Point{}, fmt.Errorf("non-finite coordinate")
	}
	return Point{x, y}, nil
}

// maxWKBElements caps claimed element counts so corrupt headers cannot
// drive huge allocations.
const maxWKBElements = 1 << 24

func (r *wkbReader) count(o binary.ByteOrder) (int, error) {
	n, err := r.uint32(o)
	if err != nil {
		return 0, err
	}
	if n > maxWKBElements {
		return 0, fmt.Errorf("element count %d exceeds limit", n)
	}
	return int(n), nil
}

func (r *wkbReader) coords(o binary.ByteOrder) ([]Point, error) {
	n, err := r.count(o)
	if err != nil {
		return nil, err
	}
	// Bound by remaining bytes: 16 per coordinate.
	if r.pos+16*n > len(r.buf) {
		return nil, fmt.Errorf("coordinate count %d exceeds remaining data", n)
	}
	ps := make([]Point, n)
	for i := range ps {
		if ps[i], err = r.point(o); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// ringFromCoords strips the explicit closing coordinate.
func ringFromCoords(ps []Point) Ring {
	if len(ps) > 1 && ps[0].Equal(ps[len(ps)-1]) {
		ps = ps[:len(ps)-1]
	}
	return Ring{Coords: ps}
}

func (r *wkbReader) geometry() (Geometry, error) {
	o, err := r.order()
	if err != nil {
		return nil, err
	}
	typ, err := r.uint32(o)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wkbPoint:
		return r.point(o)
	case wkbLineString:
		ps, err := r.coords(o)
		if err != nil {
			return nil, err
		}
		return LineString{Coords: ps}, nil
	case wkbPolygon:
		nRings, err := r.count(o)
		if err != nil {
			return nil, err
		}
		if nRings == 0 {
			return Polygon{}, nil
		}
		var poly Polygon
		for i := 0; i < nRings; i++ {
			ps, err := r.coords(o)
			if err != nil {
				return nil, err
			}
			ring := ringFromCoords(ps)
			if i == 0 {
				poly.Shell = ring
			} else {
				poly.Holes = append(poly.Holes, ring)
			}
		}
		return poly, nil
	case wkbMultiPoint:
		n, err := r.count(o)
		if err != nil {
			return nil, err
		}
		mp := MultiPoint{Points: make([]Point, 0, min(n, 1024))}
		for i := 0; i < n; i++ {
			g, err := r.geometry()
			if err != nil {
				return nil, err
			}
			p, ok := g.(Point)
			if !ok {
				return nil, fmt.Errorf("multipoint member %d is %T", i, g)
			}
			mp.Points = append(mp.Points, p)
		}
		return mp, nil
	case wkbMultiLineString:
		n, err := r.count(o)
		if err != nil {
			return nil, err
		}
		ml := MultiLineString{}
		for i := 0; i < n; i++ {
			g, err := r.geometry()
			if err != nil {
				return nil, err
			}
			l, ok := g.(LineString)
			if !ok {
				return nil, fmt.Errorf("multilinestring member %d is %T", i, g)
			}
			ml.Lines = append(ml.Lines, l)
		}
		return ml, nil
	case wkbMultiPolygon:
		n, err := r.count(o)
		if err != nil {
			return nil, err
		}
		mp := MultiPolygon{}
		for i := 0; i < n; i++ {
			g, err := r.geometry()
			if err != nil {
				return nil, err
			}
			p, ok := g.(Polygon)
			if !ok {
				return nil, fmt.Errorf("multipolygon member %d is %T", i, g)
			}
			mp.Polygons = append(mp.Polygons, p)
		}
		return mp, nil
	}
	return nil, fmt.Errorf("unsupported WKB type %d", typ)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
