package geom

import (
	"math"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypePoint:           "POINT",
		TypeMultiPoint:      "MULTIPOINT",
		TypeLineString:      "LINESTRING",
		TypeMultiLineString: "MULTILINESTRING",
		TypePolygon:         "POLYGON",
		TypeMultiPolygon:    "MULTIPOLYGON",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(99).String(); got != "geom.Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestPointBasics(t *testing.T) {
	p := Pt(3, 4)
	if p.GeomType() != TypePoint || p.Dimension() != 0 || p.IsEmpty() {
		t.Fatalf("point metadata wrong: %+v", p)
	}
	if d := p.DistanceTo(Pt(0, 0)); d != 5 {
		t.Errorf("DistanceTo = %v, want 5", d)
	}
	if !p.Equal(Pt(3, 4)) || p.Equal(Pt(3, 5)) {
		t.Error("Equal misbehaves")
	}
	if v := p.Sub(Pt(1, 1)); !v.Equal(Pt(2, 3)) {
		t.Errorf("Sub = %v", v)
	}
	if v := p.Add(Pt(1, 1)); !v.Equal(Pt(4, 5)) {
		t.Errorf("Add = %v", v)
	}
	if v := p.Scale(2); !v.Equal(Pt(6, 8)) {
		t.Errorf("Scale = %v", v)
	}
	if d := Pt(1, 0).Dot(Pt(0, 1)); d != 0 {
		t.Errorf("Dot = %v", d)
	}
	if c := Pt(1, 0).Cross(Pt(0, 1)); c != 1 {
		t.Errorf("Cross = %v", c)
	}
	env := p.Envelope()
	if env.MinX != 3 || env.MaxX != 3 || env.MinY != 4 || env.MaxY != 4 {
		t.Errorf("point envelope = %+v", env)
	}
}

func TestLineStringBasics(t *testing.T) {
	l := Line(Pt(0, 0), Pt(3, 0), Pt(3, 4))
	if l.GeomType() != TypeLineString || l.Dimension() != 1 {
		t.Fatal("linestring metadata wrong")
	}
	if l.IsEmpty() {
		t.Error("non-empty line reported empty")
	}
	if l.IsClosed() {
		t.Error("open line reported closed")
	}
	if got := l.Length(); got != 7 {
		t.Errorf("Length = %v, want 7", got)
	}
	if got := l.NumSegments(); got != 2 {
		t.Errorf("NumSegments = %d, want 2", got)
	}
	seg := l.Segment(1)
	if !seg.A.Equal(Pt(3, 0)) || !seg.B.Equal(Pt(3, 4)) {
		t.Errorf("Segment(1) = %+v", seg)
	}
	closed := Line(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 0))
	if !closed.IsClosed() {
		t.Error("closed line reported open")
	}
	if (LineString{}).IsEmpty() != true {
		t.Error("empty line not empty")
	}
	if (LineString{Coords: []Point{Pt(0, 0)}}).NumSegments() != 0 {
		t.Error("single-coordinate line should have 0 segments")
	}
}

func TestRingAreaAndOrientation(t *testing.T) {
	ccw := Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 3), Pt(0, 3)}}
	if got := ccw.SignedArea(); got != 12 {
		t.Errorf("SignedArea = %v, want 12", got)
	}
	if !ccw.IsCCW() {
		t.Error("CCW ring reported CW")
	}
	cw := Ring{Coords: []Point{Pt(0, 0), Pt(0, 3), Pt(4, 3), Pt(4, 0)}}
	if got := cw.SignedArea(); got != -12 {
		t.Errorf("SignedArea = %v, want -12", got)
	}
	if cw.IsCCW() {
		t.Error("CW ring reported CCW")
	}
	if got := cw.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if (Ring{Coords: []Point{Pt(0, 0), Pt(1, 1)}}).SignedArea() != 0 {
		t.Error("degenerate ring area should be 0")
	}
	tri := Ring{Coords: []Point{Pt(0, 0), Pt(4, 0), Pt(0, 3)}}
	if got := tri.NumSegments(); got != 3 {
		t.Errorf("triangle NumSegments = %d, want 3", got)
	}
	last := tri.Segment(2)
	if !last.A.Equal(Pt(0, 3)) || !last.B.Equal(Pt(0, 0)) {
		t.Errorf("wrap-around segment = %+v", last)
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	poly := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4)}}},
	}
	if got := poly.Area(); got != 96 {
		t.Errorf("Area = %v, want 96", got)
	}
	if poly.Dimension() != 2 || poly.GeomType() != TypePolygon {
		t.Error("polygon metadata wrong")
	}
	rings := poly.Rings()
	if len(rings) != 2 {
		t.Fatalf("Rings() returned %d rings", len(rings))
	}
}

func TestRectHelper(t *testing.T) {
	r := Rect(1, 2, 5, 6)
	if got := r.Area(); got != 16 {
		t.Errorf("Rect area = %v, want 16", got)
	}
	env := r.Envelope()
	if env.MinX != 1 || env.MinY != 2 || env.MaxX != 5 || env.MaxY != 6 {
		t.Errorf("Rect envelope = %+v", env)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := Rect(0, 0, 4, 4)
	c := sq.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y-2) > 1e-12 {
		t.Errorf("square centroid = %v, want (2,2)", c)
	}
	// Clockwise shell must give the same centroid.
	cwSq := Poly(Pt(0, 0), Pt(0, 4), Pt(4, 4), Pt(4, 0))
	c = cwSq.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y-2) > 1e-12 {
		t.Errorf("cw square centroid = %v, want (2,2)", c)
	}
	// Hole pulls centroid away.
	holed := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
		Holes: []Ring{{Coords: []Point{Pt(6, 4), Pt(8, 4), Pt(8, 6), Pt(6, 6)}}},
	}
	c = holed.Centroid()
	if c.X >= 5 {
		t.Errorf("hole on the right should pull centroid left, got %v", c)
	}
	// Degenerate polygon falls back to coordinate mean.
	line := Poly(Pt(0, 0), Pt(2, 0), Pt(4, 0))
	c = line.Centroid()
	if math.Abs(c.X-2) > 1e-12 || c.Y != 0 {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestMultiGeometries(t *testing.T) {
	mp := MultiPoint{Points: []Point{Pt(0, 0), Pt(2, 2)}}
	if mp.IsEmpty() || mp.Dimension() != 0 || mp.GeomType() != TypeMultiPoint {
		t.Error("multipoint metadata wrong")
	}
	env := mp.Envelope()
	if env.MinX != 0 || env.MaxX != 2 {
		t.Errorf("multipoint envelope = %+v", env)
	}
	if !(MultiPoint{}).IsEmpty() {
		t.Error("empty multipoint")
	}

	ml := MultiLineString{Lines: []LineString{
		Line(Pt(0, 0), Pt(1, 0)),
		Line(Pt(0, 1), Pt(3, 1)),
	}}
	if ml.Length() != 4 {
		t.Errorf("multiline length = %v, want 4", ml.Length())
	}
	if ml.GeomType() != TypeMultiLineString || ml.Dimension() != 1 {
		t.Error("multiline metadata wrong")
	}

	mpoly := MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(2, 0, 4, 1)}}
	if mpoly.Area() != 3 {
		t.Errorf("multipolygon area = %v, want 3", mpoly.Area())
	}
	if mpoly.GeomType() != TypeMultiPolygon || mpoly.Dimension() != 2 {
		t.Error("multipolygon metadata wrong")
	}
	env = mpoly.Envelope()
	if env.MaxX != 4 {
		t.Errorf("multipolygon envelope = %+v", env)
	}
}

func TestTranslate(t *testing.T) {
	cases := []Geometry{
		Pt(1, 1),
		MultiPoint{Points: []Point{Pt(0, 0), Pt(1, 1)}},
		Line(Pt(0, 0), Pt(1, 0)),
		MultiLineString{Lines: []LineString{Line(Pt(0, 0), Pt(1, 0))}},
		Rect(0, 0, 2, 2),
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1)}},
	}
	for _, g := range cases {
		moved := Translate(g, 10, 20)
		wantEnv := g.Envelope()
		gotEnv := moved.Envelope()
		if gotEnv.MinX != wantEnv.MinX+10 || gotEnv.MinY != wantEnv.MinY+20 {
			t.Errorf("%s: translate envelope = %+v", g.GeomType(), gotEnv)
		}
		if moved.GeomType() != g.GeomType() {
			t.Errorf("translate changed type of %s", g.GeomType())
		}
	}
	// Translation must not share storage with the original.
	l := Line(Pt(0, 0), Pt(1, 0))
	moved := Translate(l, 1, 1).(LineString)
	moved.Coords[0] = Pt(99, 99)
	if l.Coords[0].X == 99 {
		t.Error("Translate shares coordinate storage with input")
	}
}

func TestCentroidGeneric(t *testing.T) {
	if c := Centroid(Pt(5, 6)); !c.Equal(Pt(5, 6)) {
		t.Errorf("point centroid = %v", c)
	}
	if c := Centroid(MultiPoint{Points: []Point{Pt(0, 0), Pt(2, 0)}}); !c.Equal(Pt(1, 0)) {
		t.Errorf("multipoint centroid = %v", c)
	}
	if c := Centroid(MultiPoint{}); !c.Equal(Pt(0, 0)) {
		t.Errorf("empty multipoint centroid = %v", c)
	}
	// Line centroid is length-weighted: the long segment dominates.
	c := Centroid(Line(Pt(0, 0), Pt(10, 0), Pt(10, 1)))
	if c.X <= 4 {
		t.Errorf("line centroid = %v, expected x > 4", c)
	}
	if c := Centroid(Rect(0, 0, 2, 2)); !c.Equal(Pt(1, 1)) {
		t.Errorf("rect centroid = %v", c)
	}
	mp := MultiPolygon{Polygons: []Polygon{Rect(0, 0, 2, 2), Rect(10, 0, 12, 2)}}
	c = Centroid(mp)
	if math.Abs(c.X-6) > 1e-9 || math.Abs(c.Y-1) > 1e-9 {
		t.Errorf("multipolygon centroid = %v, want (6,1)", c)
	}
	// Degenerate line collection falls back to a coordinate.
	if c := Centroid(Line(Pt(3, 3), Pt(3, 3))); !c.Equal(Pt(3, 3)) {
		t.Errorf("degenerate line centroid = %v", c)
	}
}

func TestGenericAreaLength(t *testing.T) {
	cases := []struct {
		g            Geometry
		area, length float64
	}{
		{Pt(1, 1), 0, 0},
		{MultiPoint{Points: []Point{Pt(0, 0)}}, 0, 0},
		{Line(Pt(0, 0), Pt(3, 4)), 0, 5},
		{MultiLineString{Lines: []LineString{Line(Pt(0, 0), Pt(1, 0)), Line(Pt(0, 0), Pt(0, 2))}}, 0, 3},
		{Rect(0, 0, 4, 3), 12, 14},
		{Polygon{
			Shell: Ring{Coords: []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}},
			Holes: []Ring{{Coords: []Point{Pt(2, 2), Pt(4, 2), Pt(4, 4), Pt(2, 4)}}},
		}, 96, 48},
		{MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)}}, 2, 8},
	}
	for _, tc := range cases {
		if got := Area(tc.g); got != tc.area {
			t.Errorf("Area(%s) = %v, want %v", tc.g.WKT(), got, tc.area)
		}
		if got := Length(tc.g); got != tc.length {
			t.Errorf("Length(%s) = %v, want %v", tc.g.WKT(), got, tc.length)
		}
	}
}
