package geom

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// preparedTestGeometries returns a diverse pile of geometries on a small
// half-integer lattice, so random pairs frequently touch, overlap, share
// vertices, or contain one another — the cases where the prepared and
// unprepared code paths could plausibly diverge.
func preparedTestGeometries(rng *rand.Rand) []Geometry {
	half := func(n int) float64 { return float64(rng.Intn(n)) / 2 }
	var gs []Geometry
	// Rectangles, including degenerate-thin ones.
	for i := 0; i < 6; i++ {
		x, y := half(12), half(12)
		gs = append(gs, Rect(x, y, x+0.5+half(8), y+0.5+half(8)))
	}
	// Irregular convex polygons (jittered n-gons).
	for i := 0; i < 4; i++ {
		cx, cy := 1+half(10), 1+half(10)
		r := 0.5 + half(5)
		n := 5 + rng.Intn(8)
		var coords []Point
		for k := 0; k < n; k++ {
			ang := 2 * math.Pi * float64(k) / float64(n)
			rr := r * (0.7 + 0.3*rng.Float64())
			coords = append(coords, Pt(cx+rr*math.Cos(ang), cy+rr*math.Sin(ang)))
		}
		gs = append(gs, Polygon{Shell: Ring{Coords: coords}})
	}
	// Donuts.
	for i := 0; i < 3; i++ {
		x, y := half(8), half(8)
		gs = append(gs, Polygon{
			Shell: Ring{Coords: []Point{Pt(x, y), Pt(x + 4, y), Pt(x + 4, y + 4), Pt(x, y + 4)}},
			Holes: []Ring{{Coords: []Point{Pt(x + 1.5, y + 1.5), Pt(x + 2.5, y + 1.5), Pt(x + 2.5, y + 2.5), Pt(x + 1.5, y + 2.5)}}},
		})
	}
	// Multipolygons of two disjoint parts.
	for i := 0; i < 2; i++ {
		x, y := half(6), half(6)
		gs = append(gs, MultiPolygon{Polygons: []Polygon{
			Rect(x, y, x+1.5, y+1.5),
			Rect(x+3, y+3, x+4.5, y+4.5),
		}})
	}
	// Open polylines, closed rings-as-lines, and multilines.
	for i := 0; i < 4; i++ {
		var coords []Point
		x, y := half(12), half(12)
		coords = append(coords, Pt(x, y))
		for k := 0; k < 2+rng.Intn(4); k++ {
			x += half(6) - 1.5
			y += half(6) - 1.5
			coords = append(coords, Pt(x, y))
		}
		gs = append(gs, LineString{Coords: coords})
	}
	gs = append(gs,
		Line(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), Pt(0, 0)), // closed
		MultiLineString{Lines: []LineString{
			Line(Pt(1, 1), Pt(3, 1)),
			Line(Pt(3, 1), Pt(3, 3)), // shares an endpoint: mod-2 rule
			Line(Pt(5, 5), Pt(7, 7)),
		}},
	)
	// Points and multipoints, some on the lattice (vertex/edge contact).
	for i := 0; i < 4; i++ {
		gs = append(gs, Pt(half(16), half(16)))
	}
	gs = append(gs, MultiPoint{Points: []Point{Pt(1, 1), Pt(2, 2), Pt(4, 0)}})
	return gs
}

// preparedProbePoints returns probe points that stress a geometry's
// Locate: a grid over the (buffered) envelope plus every vertex, edge
// midpoint, and near-vertex jitter.
func preparedProbePoints(g Geometry) []Point {
	var pts []Point
	env := g.Envelope().Buffer(1)
	if !env.IsEmpty() {
		stepX := (env.MaxX - env.MinX) / 9
		stepY := (env.MaxY - env.MinY) / 9
		if stepX <= 0 {
			stepX = 0.25
		}
		if stepY <= 0 {
			stepY = 0.25
		}
		for x := env.MinX; x <= env.MaxX; x += stepX {
			for y := env.MinY; y <= env.MaxY; y += stepY {
				pts = append(pts, Pt(x, y))
			}
		}
	}
	addSeg := func(s Segment) {
		pts = append(pts, s.A, s.Midpoint(), Pt(s.A.X+Eps/2, s.A.Y), Pt(s.Midpoint().X, s.Midpoint().Y+1e-7))
	}
	switch t := g.(type) {
	case Point:
		pts = append(pts, t)
	case MultiPoint:
		pts = append(pts, t.Points...)
	case LineString:
		for i := 0; i < t.NumSegments(); i++ {
			addSeg(t.Segment(i))
		}
	case MultiLineString:
		for _, l := range t.Lines {
			for i := 0; i < l.NumSegments(); i++ {
				addSeg(l.Segment(i))
			}
		}
	case Polygon:
		for _, r := range t.Rings() {
			for i := 0; i < r.NumSegments(); i++ {
				addSeg(r.Segment(i))
			}
		}
	case MultiPolygon:
		for _, p := range t.Polygons {
			for _, r := range p.Rings() {
				for i := 0; i < r.NumSegments(); i++ {
					addSeg(r.Segment(i))
				}
			}
		}
	}
	return pts
}

func TestPreparedLocateMatchesLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for gi, g := range preparedTestGeometries(rng) {
		pg := Prepare(g)
		for _, p := range preparedProbePoints(g) {
			want := Locate(p, g)
			got := pg.Locate(p)
			if got != want {
				t.Fatalf("geometry %d (%s): Locate(%v) prepared=%v unprepared=%v",
					gi, g.WKT(), p, got, want)
			}
		}
		// Far probes exercise the envelope fast path.
		if got := pg.Locate(Pt(1e6, -1e6)); got != Exterior {
			t.Fatalf("geometry %d: far probe located %v", gi, got)
		}
	}
}

func TestNodePreparedMatchesNodeSoups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gs := preparedTestGeometries(rng)
	prepared := make([]*Prepared, len(gs))
	for i, g := range gs {
		prepared[i] = Prepare(g)
	}
	pairs := 0
	for i, a := range gs {
		for j, b := range gs {
			if a.IsEmpty() || b.IsEmpty() {
				continue
			}
			want := NodeSoups(BuildSoup(a), BuildSoup(b))
			got := NodePrepared(prepared[i], prepared[j])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("NodePrepared(%s, %s) diverges:\n got  %+v\n want %+v",
					a.WKT(), b.WKT(), got, want)
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs noded")
	}
}

func TestPreparedDistanceMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gs := preparedTestGeometries(rng)
	prepared := make([]*Prepared, len(gs))
	for i, g := range gs {
		prepared[i] = Prepare(g)
	}
	for i, a := range gs {
		for j, b := range gs {
			want := Distance(a, b)
			got := prepared[i].DistanceTo(prepared[j])
			// Exact equality: the branch-and-bound evaluates the same
			// expressions as the brute-force scan, only skipping pairs
			// that cannot hold the minimum.
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("Distance(%s, %s) prepared=%v unprepared=%v",
					a.WKT(), b.WKT(), got, want)
			}
		}
	}
}

func TestPreparedEmptyAndNil(t *testing.T) {
	cases := []*Prepared{
		Prepare(nil),
		Prepare(MultiPoint{}),
		Prepare(LineString{}),
		Prepare(Polygon{}),
		Prepare(MultiPolygon{}),
	}
	for i, pg := range cases {
		if !pg.IsEmpty() {
			t.Errorf("case %d: not empty", i)
		}
		if got := pg.Locate(Pt(0, 0)); got != Exterior {
			t.Errorf("case %d: Locate = %v", i, got)
		}
		if d := pg.DistanceTo(Prepare(Pt(1, 1))); !math.IsInf(d, 1) {
			t.Errorf("case %d: distance to empty = %v", i, d)
		}
	}
	var nilPrepared *Prepared
	if !nilPrepared.IsEmpty() || nilPrepared.NumEdges() != 0 {
		t.Error("nil *Prepared must behave as empty")
	}
}

// TestPreparedConcurrentUse drives one shared Prepared from many
// goroutines; run with -race this pins the read-only sharing contract
// the extraction worker pool relies on.
func TestPreparedConcurrentUse(t *testing.T) {
	donut := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(8, 0), Pt(8, 8), Pt(0, 8)}},
		Holes: []Ring{{Coords: []Point{Pt(3, 3), Pt(5, 3), Pt(5, 5), Pt(3, 5)}}},
	}
	pg := Prepare(donut)
	other := Prepare(Rect(6, 6, 10, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				p := Pt(rng.Float64()*10-1, rng.Float64()*10-1)
				if got, want := pg.Locate(p), Locate(p, donut); got != want {
					t.Errorf("Locate(%v) = %v, want %v", p, got, want)
					return
				}
				if got, want := pg.DistanceTo(other), Distance(donut, other.Geometry()); got != want {
					t.Errorf("DistanceTo = %v, want %v", got, want)
					return
				}
				_ = NodePrepared(pg, other)
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestAreaSamplesMatchesRelateUsage(t *testing.T) {
	donut := Polygon{
		Shell: Ring{Coords: []Point{Pt(0, 0), Pt(8, 0), Pt(8, 8), Pt(0, 8)}},
		Holes: []Ring{{Coords: []Point{Pt(3, 3), Pt(5, 3), Pt(5, 5), Pt(3, 5)}}},
	}
	for _, g := range []Geometry{
		Rect(0, 0, 2, 2),
		donut,
		MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(3, 3, 4, 4)}},
	} {
		samples := AreaSamples(g)
		if len(samples) == 0 {
			t.Fatalf("no area samples for %s", g.WKT())
		}
		for _, p := range samples {
			if Locate(p, g) != Interior {
				t.Fatalf("sample %v of %s is not interior", p, g.WKT())
			}
		}
	}
	if AreaSamples(Line(Pt(0, 0), Pt(1, 1))) != nil {
		t.Fatal("lineal geometry must have no area samples")
	}
}
