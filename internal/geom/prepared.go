package geom

import (
	"fmt"
	"math"
	"sort"
)

// Prepared caches the derived structures of a geometry that the relate /
// distance / locate machinery otherwise recomputes on every call: the
// envelope, the Soup decomposition, interior sample points, the centroid,
// and an edge tree (an STR-packed R-tree over segment envelopes). The edge
// tree turns the full-scan hot loops into indexed queries:
//
//   - Locate: a stabbing query finds the edges whose envelope can contain
//     the probe instead of testing every segment, and a Y-interval
//     traversal finds the ray-crossing edges;
//   - noding: a tree join enumerates candidate segment pairs instead of
//     the all-pairs sweep;
//   - Distance: branch-and-bound over envelope lower bounds replaces the
//     brute-force segment×segment scan.
//
// Every query is engineered to perform the same floating-point arithmetic
// as its unprepared counterpart, in the same order, so results are exactly
// identical — the tree only prunes work that provably cannot contribute.
// A Prepared is immutable after Prepare returns and safe for concurrent
// use by any number of goroutines.
type Prepared struct {
	g     Geometry
	empty bool
	env   Envelope
	soup  *Soup
	tree  segTree

	// Component tables for Locate. rings/polys describe areal components
	// (tree entry slots index rings); lines describe lineal components
	// (slots index lines).
	rings []prepRing
	polys []prepPoly
	lines []prepLine

	// Cached sample points and centroid.
	areaSamples []Point // one interior point per polygonal component
	distSamples []Point // pointSamples(soup), for containment short-circuits
	allPoints   []Point // InteriorPoints ++ BoundaryPoints, for noding splits
	centroid    Point
}

// prepRing is one polygon ring (shell or hole); its slot in the edge tree
// carries the per-ring on-boundary and ray-parity flags.
type prepRing struct {
	env Envelope
}

// prepPoly is one polygonal component: a contiguous run of rings, shell
// first.
type prepPoly struct {
	ringFirst int32
	ringCount int32
}

// prepLine is one lineal component.
type prepLine struct {
	first, last Point
	closed      bool
	empty       bool
}

// Flag bits used by the Locate traversals (one byte per slot).
const (
	prepParityBit  = 1 << 0 // ray-crossing parity (areal slots)
	prepOnSegBit   = 1 << 1 // probe lies on some edge of the slot
	prepVisitedBit = 1 << 2 // slot already folded into the running result
)

// Prepare builds the derived structures of g once, for reuse across many
// relate/distance/locate calls against the same geometry. Preparing a nil
// or empty geometry is allowed and yields an empty Prepared.
func Prepare(g Geometry) *Prepared {
	pg := &Prepared{g: g, empty: g == nil || g.IsEmpty(), env: EmptyEnvelope()}
	if g == nil {
		return pg
	}
	pg.env = g.Envelope()
	pg.soup = BuildSoup(g)
	pg.centroid = Centroid(g)
	pg.areaSamples = AreaSamples(g)
	pg.distSamples = pointSamples(pg.soup)
	pg.allPoints = append(append(make([]Point, 0, len(pg.soup.InteriorPoints)+len(pg.soup.BoundaryPoints)), pg.soup.InteriorPoints...), pg.soup.BoundaryPoints...)

	// Enumerate the edges in exactly BuildSoup's order, assigning each
	// non-degenerate edge its index into soup.Segments. Degenerate edges
	// (skipped by BuildSoup) still enter the tree with soup == -1: the
	// unprepared Locate scans them too, so the stabbing and ray queries
	// must see them; noding and distance filter them out.
	var entries []segEntry
	soupIdx := int32(0)
	addSeg := func(seg Segment, slot int32) {
		si := int32(-1)
		if !seg.IsDegenerate() {
			si = soupIdx
			soupIdx++
		}
		entries = append(entries, segEntry{seg: seg, env: seg.Envelope(), slot: slot, soup: si})
	}
	addLine := func(l LineString) {
		slot := int32(len(pg.lines))
		pg.lines = append(pg.lines, prepLine{empty: len(l.Coords) == 0, closed: l.IsClosed()})
		if len(l.Coords) > 0 {
			pg.lines[slot].first = l.Coords[0]
			pg.lines[slot].last = l.Coords[len(l.Coords)-1]
		}
		for i := 0; i < l.NumSegments(); i++ {
			addSeg(l.Segment(i), slot)
		}
	}
	addPoly := func(p Polygon) {
		comp := prepPoly{ringFirst: int32(len(pg.rings))}
		if !p.IsEmpty() {
			for _, r := range p.Rings() {
				slot := int32(len(pg.rings))
				pg.rings = append(pg.rings, prepRing{env: r.Envelope()})
				for i := 0; i < r.NumSegments(); i++ {
					addSeg(r.Segment(i), slot)
				}
			}
		}
		comp.ringCount = int32(len(pg.rings)) - comp.ringFirst
		pg.polys = append(pg.polys, comp)
	}
	switch t := g.(type) {
	case Point, MultiPoint:
		// Point-set only; Locate delegates to the scalar comparisons.
	case LineString:
		addLine(t)
	case MultiLineString:
		for _, l := range t.Lines {
			addLine(l)
		}
	case Polygon:
		addPoly(t)
	case MultiPolygon:
		for _, p := range t.Polygons {
			addPoly(p)
		}
	default:
		panic(fmt.Sprintf("geom: unknown geometry type %T", g))
	}
	if int(soupIdx) != len(pg.soup.Segments) {
		panic(fmt.Sprintf("geom: prepared edge walk found %d soup segments, BuildSoup produced %d", soupIdx, len(pg.soup.Segments)))
	}
	pg.tree = buildSegTree(entries)
	return pg
}

// Geometry returns the wrapped geometry (nil for Prepare(nil)).
func (pg *Prepared) Geometry() Geometry {
	if pg == nil {
		return nil
	}
	return pg.g
}

// IsEmpty reports whether the wrapped geometry is nil or empty.
func (pg *Prepared) IsEmpty() bool { return pg == nil || pg.empty }

// Envelope returns the cached envelope.
func (pg *Prepared) Envelope() Envelope {
	if pg == nil {
		return EmptyEnvelope()
	}
	return pg.env
}

// Soup returns the cached decomposition (nil for Prepare(nil)).
func (pg *Prepared) Soup() *Soup { return pg.soup }

// Centroid returns the cached centroid.
func (pg *Prepared) Centroid() Point { return pg.centroid }

// AreaSamples returns the cached per-component interior sample points.
func (pg *Prepared) AreaSamples() []Point { return pg.areaSamples }

// NumEdges returns the number of edges held by the edge tree (a
// preparation cost statistic).
func (pg *Prepared) NumEdges() int {
	if pg == nil {
		return 0
	}
	return len(pg.tree.entries)
}

// Locate classifies p against the prepared geometry. It returns exactly
// Locate(p, pg.Geometry()) but answers through the edge tree: an
// envelope fast path rejects far probes, a stabbing query limits the
// on-boundary tests to edges whose envelope can contain p, and a
// Y-interval traversal visits only the edges a +X ray can cross.
func (pg *Prepared) Locate(p Point) Location {
	if pg == nil || pg.empty {
		return Exterior
	}
	// The buffered-envelope test subsumes every per-segment and
	// per-point tolerance below, so a miss here is Exterior for all
	// geometry kinds.
	if !pg.env.Buffer(Eps).ContainsPoint(p) {
		return Exterior
	}
	switch pg.g.(type) {
	case Point, MultiPoint:
		return Locate(p, pg.g)
	case LineString, MultiLineString:
		return pg.locateLineal(p)
	default:
		return pg.locateAreal(p)
	}
}

// locateLineal classifies p against the prepared line work, replicating
// LocateOnLineString / locateOnMultiLine (including the mod-2 endpoint
// rule) over the tree's stabbing candidates. Lines without a candidate
// edge would fail every OnSegment test, so skipping them is exact.
func (pg *Prepared) locateLineal(p Point) Location {
	var candBuf [prepStackCands]int32
	cands := pg.tree.pointCandidates(p, candBuf[:0])
	if len(cands) == 0 {
		return Exterior
	}
	var flagBuf [prepStackSlots]uint8
	var flags []uint8
	if len(pg.lines) <= prepStackSlots {
		flags = flagBuf[:len(pg.lines)]
	} else {
		flags = make([]uint8, len(pg.lines))
	}
	for _, ei := range cands {
		e := &pg.tree.entries[ei]
		if flags[e.slot]&prepOnSegBit == 0 && e.seg.OnSegment(p) {
			flags[e.slot] |= prepOnSegBit
		}
	}
	endpointHits := 0
	interiorHit := false
	for _, ei := range cands {
		slot := pg.tree.entries[ei].slot
		if flags[slot]&prepVisitedBit != 0 {
			continue
		}
		flags[slot] |= prepVisitedBit
		if flags[slot]&prepOnSegBit == 0 {
			continue // this line answers Exterior
		}
		ln := &pg.lines[slot]
		switch {
		case ln.closed:
			interiorHit = true
		case p.DistanceTo(ln.first) <= Eps || p.DistanceTo(ln.last) <= Eps:
			endpointHits++
		default:
			interiorHit = true
		}
	}
	if endpointHits%2 == 1 {
		return Boundary
	}
	if interiorHit || endpointHits > 0 {
		return Interior
	}
	return Exterior
}

// locateAreal classifies p against the prepared polygonal components,
// replicating LocateInPolygon ring by ring. The on-boundary and
// ray-parity evidence per ring comes from the tree; the per-ring envelope
// early-exits and the hole logic are then pure flag reads.
func (pg *Prepared) locateAreal(p Point) Location {
	var flagBuf [prepStackSlots]uint8
	var flags []uint8
	if len(pg.rings) <= prepStackSlots {
		flags = flagBuf[:len(pg.rings)]
	} else {
		flags = make([]uint8, len(pg.rings))
	}
	var candBuf [prepStackCands]int32
	for _, ei := range pg.tree.pointCandidates(p, candBuf[:0]) {
		e := &pg.tree.entries[ei]
		if flags[e.slot]&prepOnSegBit == 0 && e.seg.OnSegment(p) {
			flags[e.slot] |= prepOnSegBit
		}
	}
	pg.tree.rayFlags(p, flags)
	if len(pg.polys) == 1 {
		return pg.locatePoly(p, pg.polys[0], flags)
	}
	loc := Exterior
	for _, comp := range pg.polys {
		switch pg.locatePoly(p, comp, flags) {
		case Interior:
			return Interior
		case Boundary:
			loc = Boundary
		}
	}
	return loc
}

// locatePoly folds the per-ring evidence into one polygon's location,
// mirroring LocateInPolygon: the shell decides exterior/boundary, holes
// carve the interior.
func (pg *Prepared) locatePoly(p Point, comp prepPoly, flags []uint8) Location {
	if comp.ringCount == 0 {
		return Exterior
	}
	switch pg.ringLoc(p, comp.ringFirst, flags) {
	case Exterior:
		return Exterior
	case Boundary:
		return Boundary
	}
	for h := comp.ringFirst + 1; h < comp.ringFirst+comp.ringCount; h++ {
		switch pg.ringLoc(p, h, flags) {
		case Interior:
			return Exterior
		case Boundary:
			return Boundary
		}
	}
	return Interior
}

// ringLoc reads one ring's location from the traversal flags, with the
// same buffered-envelope early-exit LocateInRing performs. A ring whose
// envelope excludes p can have neither flag set (its edges' envelopes are
// contained in the ring envelope), so the order of checks is immaterial —
// it is kept for symmetry with the unprepared code.
func (pg *Prepared) ringLoc(p Point, slot int32, flags []uint8) Location {
	if !pg.rings[slot].env.Buffer(Eps).ContainsPoint(p) {
		return Exterior
	}
	f := flags[slot]
	if f&prepOnSegBit != 0 {
		return Boundary
	}
	if f&prepParityBit != 0 {
		return Interior
	}
	return Exterior
}

// DistanceTo returns the minimal distance between the two prepared
// geometries — exactly Distance(pg.Geometry(), o.Geometry()) — using the
// cached soups and sample points, and a dual-tree branch-and-bound over
// envelope lower bounds in place of the brute-force segment×segment scan.
func (pg *Prepared) DistanceTo(o *Prepared) float64 {
	if pg.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	sa, sb := pg.soup, o.soup
	// Containment short-circuits, as in Distance.
	if sa.HasArea && pg.containsAny(o.distSamples) {
		return 0
	}
	if sb.HasArea && o.containsAny(pg.distSamples) {
		return 0
	}
	best := math.Inf(1)
	// Segment-to-segment: branch-and-bound. Only pairs whose envelope
	// distance exceeds the running best are pruned; such pairs cannot
	// hold the minimum, so the result equals the brute-force scan.
	if pg.tree.root >= 0 && o.tree.root >= 0 {
		best = segPairDist(&pg.tree, &o.tree, pg.tree.root, o.tree.root, best)
		if best == 0 {
			return 0
		}
	}
	// Point-to-segment and point-to-point distances, as in Distance.
	for _, p := range sa.InteriorPoints {
		for _, tb := range sb.Segments {
			if d := tb.Seg.DistanceToPoint(p); d < best {
				best = d
			}
		}
		for _, q := range sb.InteriorPoints {
			if d := p.DistanceTo(q); d < best {
				best = d
			}
		}
	}
	for _, q := range sb.InteriorPoints {
		for _, ta := range sa.Segments {
			if d := ta.Seg.DistanceToPoint(q); d < best {
				best = d
			}
		}
	}
	if best <= Eps {
		return 0
	}
	return best
}

// containsAny reports whether any of the points is not in the exterior of
// the prepared geometry (anyPointInside against the cached envelope).
func (pg *Prepared) containsAny(pts []Point) bool {
	env := pg.env.Buffer(Eps)
	for _, p := range pts {
		if !env.ContainsPoint(p) {
			continue
		}
		if pg.Locate(p) != Exterior {
			return true
		}
	}
	return false
}

// NodePrepared is NodeSoups over two prepared geometries: the candidate
// segment pairs come from an edge-tree join instead of the all-pairs
// envelope sweep. Candidates are visited in the same (i-major, j-ascending)
// order as NodeSoups, so the cut lists and the order-sensitive node-point
// deduplication produce identical results.
func NodePrepared(a, b *Prepared) NodeResult {
	sa, sb := a.soup, b.soup
	var res NodeResult
	nodeSet := newPointSet()

	cutsA := make([][]float64, len(sa.Segments))
	cutsB := make([][]float64, len(sb.Segments))

	var candBuf [prepStackCands]int32
	var jBuf [prepStackCands]int32
	for i := range sa.Segments {
		saSeg := sa.Segments[i].Seg
		ea := saSeg.Envelope().Buffer(Eps)
		js := jBuf[:0]
		for _, ei := range b.tree.envCandidates(ea, candBuf[:0]) {
			if s := b.tree.entries[ei].soup; s >= 0 {
				js = append(js, s)
			}
		}
		sortInt32s(js)
		for _, j := range js {
			sbSeg := sb.Segments[j].Seg
			kind, p0, p1 := saSeg.Intersect(sbSeg)
			switch kind {
			case IntersectionPoint:
				cutsA[i] = append(cutsA[i], paramOn(saSeg, p0))
				cutsB[j] = append(cutsB[j], paramOn(sbSeg, p0))
				nodeSet.add(p0)
			case IntersectionOverlap:
				for _, p := range []Point{p0, p1} {
					cutsA[i] = append(cutsA[i], paramOn(saSeg, p))
					cutsB[j] = append(cutsB[j], paramOn(sbSeg, p))
					nodeSet.add(p)
				}
			}
		}
	}
	splitAtPointsPrepared(a, cutsA, b.allPoints, nodeSet)
	splitAtPointsPrepared(b, cutsB, a.allPoints, nodeSet)

	res.SubA = splitAll(sa.Segments, cutsA)
	res.SubB = splitAll(sb.Segments, cutsB)
	res.Nodes = nodeSet.points
	return res
}

// splitAtPointsPrepared splits pg's segments at the other soup's isolated
// points, finding the candidate segments per point through the edge tree.
// The (segment, point) pairs are then processed in segment-major,
// point-ascending order — the visiting order of the unprepared
// splitAtPoints — so cut lists and node deduplication match exactly.
func splitAtPointsPrepared(pg *Prepared, cuts [][]float64, pts []Point, nodeSet *pointSet) {
	if len(pts) == 0 || pg.tree.root < 0 {
		return
	}
	type segPoint struct {
		seg int32
		pt  int32
	}
	var pairBuf [prepStackCands]segPoint
	pairs := pairBuf[:0]
	var candBuf [prepStackCands]int32
	for pi, p := range pts {
		for _, ei := range pg.tree.pointCandidates(p, candBuf[:0]) {
			if s := pg.tree.entries[ei].soup; s >= 0 {
				pairs = append(pairs, segPoint{seg: s, pt: int32(pi)})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].seg != pairs[j].seg {
			return pairs[i].seg < pairs[j].seg
		}
		return pairs[i].pt < pairs[j].pt
	})
	for _, pr := range pairs {
		ts := pg.soup.Segments[pr.seg]
		p := pts[pr.pt]
		env := ts.Seg.Envelope().Buffer(Eps)
		if env.ContainsPoint(p) && ts.Seg.OnSegment(p) {
			cuts[pr.seg] = append(cuts[pr.seg], paramOn(ts.Seg, p))
			nodeSet.add(p)
		}
	}
}

// AreaSamples returns one interior sample point per polygonal component
// of g, or nil for non-areal geometries. These are the witnesses the
// DE-9IM area entries are decided with.
func AreaSamples(g Geometry) []Point {
	switch t := g.(type) {
	case Polygon:
		if p, ok := InteriorPoint(t); ok {
			return []Point{p}
		}
	case MultiPolygon:
		var pts []Point
		for _, poly := range t.Polygons {
			if p, ok := polygonInteriorPoint(poly); ok {
				pts = append(pts, p)
			}
		}
		return pts
	}
	return nil
}

// ---------------------------------------------------------------------------
// Edge tree: a flat-array STR-packed R-tree over segment envelopes.

// Traversal scratch sizes: stack-allocated buffers for the hot queries;
// larger geometries spill to the heap transparently via append / make.
const (
	prepStackCands = 128
	prepStackSlots = 64
	segTreeFan     = 8
)

// segEntry is one leaf edge: the segment, its envelope, the Locate slot
// it reports to (ring index for polygons, line index for linestrings),
// and its index into the soup's segment list (-1 for degenerate edges,
// which only the Locate queries may see).
type segEntry struct {
	seg  Segment
	env  Envelope
	slot int32
	soup int32
}

// segNode is one tree node. Leaves reference a contiguous run of entries;
// internal nodes a contiguous run of child nodes.
type segNode struct {
	env   Envelope
	first int32
	count int32
	leaf  bool
}

// segTree is the packed tree. root is -1 for edge-less geometries.
type segTree struct {
	entries []segEntry
	nodes   []segNode
	root    int32
}

// buildSegTree bulk-loads the entries sort-tile-recursively: entries are
// sorted by envelope center X, tiled into vertical strips, each strip
// sorted by center Y, and packed into leaves of segTreeFan entries. Upper
// levels group consecutive nodes (the STR order keeps neighbours
// spatially close), giving a pointer-free array layout.
func buildSegTree(entries []segEntry) segTree {
	t := segTree{entries: entries, root: -1}
	n := len(entries)
	if n == 0 {
		return t
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].env.Center().X < entries[j].env.Center().X
	})
	leafCount := (n + segTreeFan - 1) / segTreeFan
	strips := int(math.Ceil(math.Sqrt(float64(leafCount))))
	stripSize := (n + strips - 1) / strips
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := entries[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].env.Center().Y < strip[j].env.Center().Y
		})
	}
	for o := 0; o < n; o += segTreeFan {
		e := o + segTreeFan
		if e > n {
			e = n
		}
		node := segNode{leaf: true, first: int32(o), count: int32(e - o), env: EmptyEnvelope()}
		for i := o; i < e; i++ {
			node.env = node.env.Union(entries[i].env)
		}
		t.nodes = append(t.nodes, node)
	}
	levelStart, levelCount := 0, len(t.nodes)
	for levelCount > 1 {
		next := len(t.nodes)
		for o := 0; o < levelCount; o += segTreeFan {
			e := o + segTreeFan
			if e > levelCount {
				e = levelCount
			}
			node := segNode{first: int32(levelStart + o), count: int32(e - o), env: EmptyEnvelope()}
			for c := o; c < e; c++ {
				node.env = node.env.Union(t.nodes[levelStart+c].env)
			}
			t.nodes = append(t.nodes, node)
		}
		levelStart, levelCount = next, len(t.nodes)-next
	}
	t.root = int32(levelStart)
	return t
}

// pointCandidates appends the indices of entries whose buffered envelope
// contains p — exactly the edges for which OnSegment or a point-split env
// test can succeed.
func (t *segTree) pointCandidates(p Point, dst []int32) []int32 {
	if t.root < 0 {
		return dst
	}
	var stackBuf [64]int32
	stack := append(stackBuf[:0], t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if !n.env.Buffer(Eps).ContainsPoint(p) {
			continue
		}
		if n.leaf {
			for i := n.first; i < n.first+n.count; i++ {
				if t.entries[i].env.Buffer(Eps).ContainsPoint(p) {
					dst = append(dst, i)
				}
			}
		} else {
			for c := n.first; c < n.first+n.count; c++ {
				stack = append(stack, c)
			}
		}
	}
	return dst
}

// envCandidates appends the indices of entries whose envelope intersects
// q (q is expected pre-buffered by the caller, matching the NodeSoups
// prefilter).
func (t *segTree) envCandidates(q Envelope, dst []int32) []int32 {
	if t.root < 0 {
		return dst
	}
	var stackBuf [64]int32
	stack := append(stackBuf[:0], t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if !q.Intersects(n.env) {
			continue
		}
		if n.leaf {
			for i := n.first; i < n.first+n.count; i++ {
				if q.Intersects(t.entries[i].env) {
					dst = append(dst, i)
				}
			}
		} else {
			for c := n.first; c < n.first+n.count; c++ {
				stack = append(stack, c)
			}
		}
	}
	return dst
}

// rayFlags casts the +X ray from p and XORs the crossing parity of each
// edge into its slot's parity bit. Nodes are pruned purely on the exact Y
// comparisons of the half-open crossing rule — an edge crosses only when
// exactly one endpoint is strictly above the ray, which requires
// env.MinY <= p.Y < env.MaxY-ish bounds — so no arithmetic is performed
// that the unprepared LocateInRing loop would not perform, and the
// surviving edges evaluate the identical xAt expression.
func (t *segTree) rayFlags(p Point, flags []uint8) {
	if t.root < 0 {
		return
	}
	var stackBuf [64]int32
	stack := append(stackBuf[:0], t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		// (a.Y > p.Y) != (b.Y > p.Y) needs one endpoint above and one at
		// or below the ray: impossible when the whole node is at/below
		// (MaxY <= p.Y) or strictly above (MinY > p.Y).
		if n.env.MaxY <= p.Y || n.env.MinY > p.Y {
			continue
		}
		if n.leaf {
			for i := n.first; i < n.first+n.count; i++ {
				e := &t.entries[i]
				a, b := e.seg.A, e.seg.B
				if (a.Y > p.Y) != (b.Y > p.Y) {
					xAt := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
					if xAt > p.X {
						flags[e.slot] ^= prepParityBit
					}
				}
			}
		} else {
			for c := n.first; c < n.first+n.count; c++ {
				stack = append(stack, c)
			}
		}
	}
}

// segPairDist is the dual-tree branch-and-bound kernel: the minimum
// segment-to-segment distance between the two subtrees, no larger than
// best. Degenerate edges (soup < 0) are not soup segments and are skipped,
// as the brute-force scan never sees them.
func segPairDist(ta, tb *segTree, ia, ib int32, best float64) float64 {
	na, nb := &ta.nodes[ia], &tb.nodes[ib]
	if na.env.Distance(nb.env) > best {
		return best
	}
	switch {
	case na.leaf && nb.leaf:
		for i := na.first; i < na.first+na.count; i++ {
			ea := &ta.entries[i]
			if ea.soup < 0 {
				continue
			}
			for j := nb.first; j < nb.first+nb.count; j++ {
				eb := &tb.entries[j]
				if eb.soup < 0 {
					continue
				}
				if d := ea.seg.DistanceToSegment(eb.seg); d < best {
					best = d
					if best == 0 {
						return 0
					}
				}
			}
		}
	case na.leaf:
		for c := nb.first; c < nb.first+nb.count; c++ {
			best = segPairDist(ta, tb, ia, c, best)
			if best == 0 {
				return 0
			}
		}
	case nb.leaf:
		for c := na.first; c < na.first+na.count; c++ {
			best = segPairDist(ta, tb, c, ib, best)
			if best == 0 {
				return 0
			}
		}
	default:
		// Split the node with the larger envelope: tighter child bounds
		// prune earlier.
		if na.env.Perimeter() >= nb.env.Perimeter() {
			for c := na.first; c < na.first+na.count; c++ {
				best = segPairDist(ta, tb, c, ib, best)
				if best == 0 {
					return 0
				}
			}
		} else {
			for c := nb.first; c < nb.first+nb.count; c++ {
				best = segPairDist(ta, tb, ia, c, best)
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

// sortInt32s is an insertion sort for the small candidate lists of the
// noding join (keeps the hot path allocation-free).
func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
