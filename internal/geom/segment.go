package geom

import "math"

// Eps is the tolerance used by the coordinate comparisons in this package.
// Synthetic coordinates in this repository are small integers and halves,
// so a fixed absolute tolerance is appropriate.
const Eps = 1e-9

// Segment is a directed straight line segment.
type Segment struct {
	A, B Point
}

// Envelope returns the segment's bounding box.
func (s Segment) Envelope() Envelope { return NewEnvelope(s.A, s.B) }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.DistanceTo(s.B) }

// Midpoint returns the parametric midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// IsDegenerate reports whether the segment has (near-)zero length.
func (s Segment) IsDegenerate() bool { return s.A.DistanceTo(s.B) <= Eps }

// Orientation classifies point c relative to the directed line a→b:
// +1 when counterclockwise (left), -1 when clockwise (right), 0 when
// collinear within tolerance. The tolerance scales with the magnitude of
// the operands so that long segments do not misclassify nearby points.
func Orientation(a, b, c Point) int {
	det := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) +
		math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := Eps * (1 + scale)
	switch {
	case det > tol:
		return 1
	case det < -tol:
		return -1
	}
	return 0
}

// OnSegment reports whether point p lies on segment s, endpoints included.
func (s Segment) OnSegment(p Point) bool {
	if Orientation(s.A, s.B, p) != 0 {
		return false
	}
	return s.Envelope().Buffer(Eps).ContainsPoint(p)
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / den
	if t <= 0 {
		return s.A
	}
	if t >= 1 {
		return s.B
	}
	return s.A.Add(d.Scale(t))
}

// DistanceToPoint returns the distance from p to the segment.
func (s Segment) DistanceToPoint(p Point) float64 {
	return p.DistanceTo(s.ClosestPoint(p))
}

// DistanceToSegment returns the minimal distance between two segments
// (0 when they intersect).
func (s Segment) DistanceToSegment(o Segment) float64 {
	if kind, _, _ := s.Intersect(o); kind != IntersectionNone {
		return 0
	}
	d := s.DistanceToPoint(o.A)
	if v := s.DistanceToPoint(o.B); v < d {
		d = v
	}
	if v := o.DistanceToPoint(s.A); v < d {
		d = v
	}
	if v := o.DistanceToPoint(s.B); v < d {
		d = v
	}
	return d
}

// IntersectionKind describes the result of intersecting two segments.
type IntersectionKind int

// Possible intersection kinds.
const (
	// IntersectionNone means the segments do not meet.
	IntersectionNone IntersectionKind = iota
	// IntersectionPoint means the segments meet in exactly one point.
	IntersectionPoint
	// IntersectionOverlap means the segments are collinear and share a
	// sub-segment of positive length.
	IntersectionOverlap
)

// Intersect computes the intersection of two segments. For
// IntersectionPoint the single meeting point is returned in p0; for
// IntersectionOverlap the shared sub-segment's endpoints are returned in
// p0 and p1.
func (s Segment) Intersect(o Segment) (kind IntersectionKind, p0, p1 Point) {
	if !s.Envelope().Buffer(Eps).Intersects(o.Envelope().Buffer(Eps)) {
		return IntersectionNone, Point{}, Point{}
	}
	o1 := Orientation(s.A, s.B, o.A)
	o2 := Orientation(s.A, s.B, o.B)
	o3 := Orientation(o.A, o.B, s.A)
	o4 := Orientation(o.A, o.B, s.B)

	if o1 == 0 && o2 == 0 {
		// Collinear: project onto the dominant axis and intersect ranges.
		return s.collinearOverlap(o)
	}

	if o1 != o2 && o3 != o4 {
		// Proper or endpoint crossing: compute the meeting point by
		// solving the two line equations.
		d1 := s.B.Sub(s.A)
		d2 := o.B.Sub(o.A)
		den := d1.Cross(d2)
		if den == 0 {
			// Nearly parallel; fall back to an endpoint that lies on the
			// other segment.
			for _, c := range []Point{o.A, o.B, s.A, s.B} {
				if s.OnSegment(c) && o.OnSegment(c) {
					return IntersectionPoint, c, Point{}
				}
			}
			return IntersectionNone, Point{}, Point{}
		}
		t := o.A.Sub(s.A).Cross(d2) / den
		p := s.A.Add(d1.Scale(t))
		return IntersectionPoint, p, Point{}
	}

	// Touching cases: an endpoint of one lies on the other.
	for _, c := range []Point{o.A, o.B} {
		if s.OnSegment(c) && o.OnSegment(c) {
			return IntersectionPoint, c, Point{}
		}
	}
	for _, c := range []Point{s.A, s.B} {
		if s.OnSegment(c) && o.OnSegment(c) {
			return IntersectionPoint, c, Point{}
		}
	}
	return IntersectionNone, Point{}, Point{}
}

// collinearOverlap intersects two collinear segments.
func (s Segment) collinearOverlap(o Segment) (IntersectionKind, Point, Point) {
	// Choose the dominant axis of s for parameterisation.
	dx := math.Abs(s.B.X - s.A.X)
	dy := math.Abs(s.B.Y - s.A.Y)
	coord := func(p Point) float64 {
		if dx >= dy {
			return p.X
		}
		return p.Y
	}
	sLo, sHi := coord(s.A), coord(s.B)
	if sLo > sHi {
		sLo, sHi = sHi, sLo
	}
	oLo, oHi := coord(o.A), coord(o.B)
	pLo, pHi := o.A, o.B
	if oLo > oHi {
		oLo, oHi = oHi, oLo
		pLo, pHi = pHi, pLo
	}
	lo := math.Max(sLo, oLo)
	hi := math.Min(sHi, oHi)
	if lo > hi+Eps {
		return IntersectionNone, Point{}, Point{}
	}
	// Map the clamped parameter range back to points. Endpoints of the
	// overlap are endpoints of one of the two segments.
	pick := func(v float64) Point {
		for _, c := range []Point{s.A, s.B, pLo, pHi} {
			if math.Abs(coord(c)-v) <= Eps {
				return c
			}
		}
		return s.A // unreachable for valid inputs
	}
	a, b := pick(lo), pick(hi)
	if a.DistanceTo(b) <= Eps {
		return IntersectionPoint, a, Point{}
	}
	return IntersectionOverlap, a, b
}
