package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// ColocationSceneConfig drives the co-location scene generator: a
// square world seeded with cluster sites at which planted feature-type
// sets co-occur tightly, plus uniform noise instances of every type.
// With a neighborhood distance of at least 2*ClusterSpread, every
// planted set forms a clique at each of its sites, so the planted sets
// are prevalent at participation indices the noise dilutes predictably
// — the structure the oracle and property tests sweep over.
type ColocationSceneConfig struct {
	Seed int64
	// Types names the point feature types (>= 2).
	Types []string
	// Extent is the world side length; all points land in [0, Extent]².
	Extent float64
	// Clusters is the number of planted sites.
	Clusters int
	// ClusterSpread bounds each member's offset from its site, so
	// members of one site are pairwise within 2*ClusterSpread.
	ClusterSpread float64
	// Planted are the co-located type sets; sites cycle through them
	// round-robin. Empty plants the full type set at every site.
	Planted [][]string
	// Noise is the uniform background instance count per type.
	Noise int
}

// DefaultColocationScene is a small planted workload: four point types,
// two planted pairs overlapping in one type, moderate noise.
func DefaultColocationScene(seed int64) ColocationSceneConfig {
	return ColocationSceneConfig{
		Seed:          seed,
		Types:         []string{"atm", "busStop", "cafe", "kiosk"},
		Extent:        100,
		Clusters:      12,
		ClusterSpread: 0.5,
		Planted:       [][]string{{"atm", "busStop"}, {"busStop", "cafe", "kiosk"}},
		Noise:         6,
	}
}

// GenerateColocationScene builds a multi-feature-type point scene with
// planted co-location patterns. The first type becomes the dataset's
// reference layer purely to satisfy the dataset shape — co-location
// mining treats every layer as a peer feature type.
func GenerateColocationScene(cfg ColocationSceneConfig) (*dataset.Dataset, error) {
	if len(cfg.Types) < 2 {
		return nil, fmt.Errorf("datagen: co-location scene needs >= 2 types, got %d", len(cfg.Types))
	}
	if cfg.Extent <= 0 {
		return nil, fmt.Errorf("datagen: extent must be positive, got %v", cfg.Extent)
	}
	if cfg.Clusters < 0 || cfg.Noise < 0 {
		return nil, fmt.Errorf("datagen: clusters and noise must be >= 0")
	}
	if cfg.ClusterSpread < 0 {
		return nil, fmt.Errorf("datagen: cluster spread must be >= 0, got %v", cfg.ClusterSpread)
	}
	known := map[string]*dataset.Layer{}
	layers := make([]*dataset.Layer, len(cfg.Types))
	for i, name := range cfg.Types {
		if known[name] != nil {
			return nil, fmt.Errorf("datagen: duplicate type %q", name)
		}
		layers[i] = dataset.NewLayer(name)
		known[name] = layers[i]
	}
	planted := cfg.Planted
	if len(planted) == 0 {
		planted = [][]string{cfg.Types}
	}
	for _, set := range planted {
		for _, name := range set {
			if known[name] == nil {
				return nil, fmt.Errorf("datagen: planted set names unknown type %q", name)
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ids := map[string]int{}
	place := func(l *dataset.Layer, x, y float64) {
		ids[l.Type]++
		l.Add(dataset.Feature{
			ID:       fmt.Sprintf("%s-%d", l.Type, ids[l.Type]),
			Geometry: geom.Pt(x, y),
		})
	}
	// Offsets are rejection-sampled from the disc of radius
	// ClusterSpread, so two members of one site are at most
	// 2*ClusterSpread apart — the guarantee the doc comment promises.
	discOffset := func() (float64, float64) {
		for {
			dx := (rng.Float64()*2 - 1) * cfg.ClusterSpread
			dy := (rng.Float64()*2 - 1) * cfg.ClusterSpread
			if dx*dx+dy*dy <= cfg.ClusterSpread*cfg.ClusterSpread {
				return dx, dy
			}
		}
	}
	for c := 0; c < cfg.Clusters; c++ {
		cx := rng.Float64() * cfg.Extent
		cy := rng.Float64() * cfg.Extent
		for _, name := range planted[c%len(planted)] {
			dx, dy := discOffset()
			place(known[name], cx+dx, cy+dy)
		}
	}
	for _, l := range layers {
		for i := 0; i < cfg.Noise; i++ {
			place(l, rng.Float64()*cfg.Extent, rng.Float64()*cfg.Extent)
		}
	}
	return &dataset.Dataset{Reference: layers[0], Relevant: layers[1:]}, nil
}
