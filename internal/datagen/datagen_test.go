package datagen

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/qsr"
	"repro/internal/transact"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := PaperDataset1(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperDataset1(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("row counts differ")
	}
	for i := range a.Transactions {
		if strings.Join(a.Transactions[i].Items, "|") != strings.Join(b.Transactions[i].Items, "|") {
			t.Fatalf("row %d differs across same-seed runs", i)
		}
	}
	c, err := PaperDataset1(8, 200)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Transactions {
		if strings.Join(a.Transactions[i].Items, "|") != strings.Join(c.Transactions[i].Items, "|") {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateErrors(t *testing.T) {
	base := TransactionConfig{
		Rows:       10,
		Predicates: []string{"a"},
		Profiles:   []Profile{{Weight: 1}},
	}
	bad := base
	bad.Rows = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero rows should fail")
	}
	bad = base
	bad.Predicates = nil
	if _, err := Generate(bad); err == nil {
		t.Error("no predicates should fail")
	}
	bad = base
	bad.Profiles = nil
	if _, err := Generate(bad); err == nil {
		t.Error("no profiles should fail")
	}
	bad = base
	bad.Profiles = []Profile{{Weight: -1}}
	if _, err := Generate(bad); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestDataset1Statistics(t *testing.T) {
	table, err := PaperDataset1(DefaultSeed, DefaultRows)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != DefaultRows {
		t.Fatalf("rows = %d", table.Len())
	}
	// The vocabulary must expose 13 spatial predicates over 6 feature
	// types with 9 same-feature pairs, plus one non-spatial attribute.
	spatial := map[string]bool{}
	typeRelCount := map[string]int{}
	attrNames := map[string]bool{}
	for _, it := range table.Items() {
		if i := strings.IndexByte(it, '='); i >= 0 {
			attrNames[it[:i]] = true
			continue
		}
		p, err := qsr.ParsePredicate(it)
		if err != nil {
			t.Errorf("unparseable predicate %q", it)
			continue
		}
		spatial[it] = true
		typeRelCount[p.FeatureType]++
	}
	if len(spatial) != 13 {
		t.Errorf("spatial predicates = %d, want 13", len(spatial))
	}
	if len(typeRelCount) != 6 {
		t.Errorf("feature types = %d, want 6", len(typeRelCount))
	}
	if len(attrNames) != 1 {
		t.Errorf("non-spatial attributes = %d, want 1", len(attrNames))
	}
	samePairs := 0
	for _, c := range typeRelCount {
		samePairs += c * (c - 1) / 2
	}
	if samePairs != 9 {
		t.Errorf("same-feature pairs = %d, want 9", samePairs)
	}
	if len(Dataset1Dependencies) != 4 {
		t.Errorf("dependencies = %d, want 4", len(Dataset1Dependencies))
	}
}

func TestDataset1AttributeExclusive(t *testing.T) {
	table, err := PaperDataset1(DefaultSeed, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range table.Transactions {
		high, low := false, false
		for _, it := range tx.Items {
			if it == "crimeRate=high" {
				high = true
			}
			if it == "crimeRate=low" {
				low = true
			}
		}
		if high && low {
			t.Fatalf("row %s has both crimeRate values", tx.RefID)
		}
	}
}

func TestDataset1DependenciesEnforced(t *testing.T) {
	table, err := PaperDataset1(DefaultSeed, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range Dataset1Dependencies {
		violations := 0
		for _, tx := range table.Transactions {
			hasA, hasB := false, false
			for _, it := range tx.Items {
				if it == dep.A {
					hasA = true
				}
				if it == dep.B {
					hasB = true
				}
			}
			if hasA && !hasB {
				violations++
			}
		}
		if violations != 0 {
			t.Errorf("dependency %v violated in %d rows", dep, violations)
		}
	}
}

func TestDataset2Statistics(t *testing.T) {
	table, err := PaperDataset2(DefaultSeed, DefaultRows)
	if err != nil {
		t.Fatal(err)
	}
	spatial := map[string]bool{}
	typeRelCount := map[string]int{}
	for _, it := range table.Items() {
		p, err := qsr.ParsePredicate(it)
		if err != nil {
			t.Errorf("unparseable predicate %q", it)
			continue
		}
		spatial[it] = true
		typeRelCount[p.FeatureType]++
	}
	if len(spatial) != 10 {
		t.Errorf("spatial predicates = %d, want 10", len(spatial))
	}
	samePairs := 0
	for _, c := range typeRelCount {
		samePairs += c * (c - 1) / 2
	}
	if samePairs != 5 {
		t.Errorf("same-feature pairs = %d, want 5", samePairs)
	}
}

// TestDataset2ReductionShape verifies the headline of Figure 6: KC+
// reduces the number of frequent itemsets (size >= 2) by more than 55%
// for every minimum support in the sweep.
func TestDataset2ReductionShape(t *testing.T) {
	table, err := PaperDataset2(DefaultSeed, DefaultRows)
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []float64{0.05, 0.08, 0.11, 0.14, 0.17} {
		db := itemset.NewDB(table)
		full, err := mining.Apriori(db, mining.Config{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		plus, err := mining.AprioriKCPlus(db, mining.Config{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		nFull, nPlus := full.NumFrequent(2), plus.NumFrequent(2)
		if nFull == 0 {
			t.Fatalf("minsup %v: no frequent sets at all", minsup)
		}
		reduction := 1 - float64(nPlus)/float64(nFull)
		if reduction <= 0.55 {
			t.Errorf("minsup %v: reduction = %.1f%%, want > 55%% (paper Figure 6): %d -> %d",
				minsup, reduction*100, nFull, nPlus)
		}
	}
}

// TestDataset1ReductionShape verifies Figure 4's shape: KC removes around
// 28% versus Apriori, and KC+ more than 60% versus Apriori, at minimum
// supports 5%, 10% and 15%.
func TestDataset1ReductionShape(t *testing.T) {
	table, err := PaperDataset1(DefaultSeed, DefaultRows)
	if err != nil {
		t.Fatal(err)
	}
	deps := make([]mining.Pair, len(Dataset1Dependencies))
	for i, d := range Dataset1Dependencies {
		deps[i] = mining.Pair{A: d.A, B: d.B}
	}
	for _, minsup := range []float64{0.05, 0.10, 0.15} {
		db := itemset.NewDB(table)
		cfg := mining.Config{MinSupport: minsup, Dependencies: deps}
		full, err := mining.Apriori(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		kc, err := mining.AprioriKC(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plus, err := mining.AprioriKCPlus(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nFull, nKC, nPlus := full.NumFrequent(2), kc.NumFrequent(2), plus.NumFrequent(2)
		if !(nPlus < nKC && nKC < nFull) {
			t.Errorf("minsup %v: ordering broken: %d, %d, %d", minsup, nFull, nKC, nPlus)
		}
		kcRed := 1 - float64(nKC)/float64(nFull)
		plusRed := 1 - float64(nPlus)/float64(nFull)
		// The paper reports "around 28%" for KC; accept a generous band.
		if kcRed < 0.10 || kcRed > 0.50 {
			t.Errorf("minsup %v: KC reduction = %.1f%%, want around 28%%", minsup, kcRed*100)
		}
		if plusRed <= 0.60 {
			t.Errorf("minsup %v: KC+ reduction = %.1f%%, want > 60%%", minsup, plusRed*100)
		}
	}
}

func TestGenerateSceneValidAndExtractable(t *testing.T) {
	scene, err := GenerateScene(DefaultScene(5, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	if err := scene.Validate(); err != nil {
		t.Fatalf("scene invalid: %v", err)
	}
	if scene.Reference.Len() != 20 {
		t.Errorf("districts = %d, want 20", scene.Reference.Len())
	}
	table, err := transact.Extract(scene, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 20 {
		t.Fatalf("transactions = %d", table.Len())
	}
	// The scene must produce a usable variety of predicates.
	kinds := map[string]bool{}
	for _, it := range table.Items() {
		if p, err := qsr.ParsePredicate(it); err == nil {
			kinds[p.Relation.String()] = true
		}
	}
	for _, want := range []string{"contains", "crosses"} {
		if !kinds[want] {
			t.Errorf("scene extraction missing relation %q (got %v)", want, kinds)
		}
	}
}

func TestGenerateSceneErrors(t *testing.T) {
	if _, err := GenerateScene(SceneConfig{GridW: 0, GridH: 1, DistrictSize: 1,
		Features: []SceneFeatureSpec{{Name: "x"}}}); err == nil {
		t.Error("zero grid should fail")
	}
	if _, err := GenerateScene(SceneConfig{GridW: 1, GridH: 1, DistrictSize: 0,
		Features: []SceneFeatureSpec{{Name: "x"}}}); err == nil {
		t.Error("zero district size should fail")
	}
	if _, err := GenerateScene(SceneConfig{GridW: 1, GridH: 1, DistrictSize: 1}); err == nil {
		t.Error("no feature specs should fail")
	}
}

func TestSceneDeterministic(t *testing.T) {
	a, _ := GenerateScene(DefaultScene(3, 3, 5))
	b, _ := GenerateScene(DefaultScene(3, 3, 5))
	ta, err := transact.Extract(a, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := transact.Extract(b, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta.Transactions {
		if strings.Join(ta.Transactions[i].Items, "|") != strings.Join(tb.Transactions[i].Items, "|") {
			t.Fatalf("scene row %d differs across same-seed runs", i)
		}
	}
}

func TestGenerateRespectsVocabularyOrder(t *testing.T) {
	table, err := Generate(TransactionConfig{
		Rows:       50,
		Seed:       1,
		Predicates: []string{"a", "b", "c"},
		BaseProb:   0.9,
		Profiles:   []Profile{{Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 50 {
		t.Fatal("row count")
	}
	var _ = dataset.NormalizeItems // silence linters about import use in edge builds
}

func TestIrregularSceneStillExtractsContains(t *testing.T) {
	cfg := DefaultScene(5, 5, 77)
	cfg.IrregularPolygons = true
	scene, err := GenerateScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := scene.Validate(); err != nil {
		t.Fatalf("irregular scene invalid: %v", err)
	}
	table, err := transact.Extract(scene, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The irregular blobs placed in "contains" slots must still extract
	// as contains_slum somewhere.
	found := false
	for _, tx := range table.Transactions {
		for _, it := range tx.Items {
			if it == "contains_slum" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no contains_slum predicates from irregular scene")
	}
	// At least one slum must actually be a non-rectangular polygon.
	irregular := false
	for _, f := range scene.Relevant[0].Features {
		if p, ok := f.Geometry.(geom.Polygon); ok && len(p.Shell.Coords) > 4 {
			irregular = true
			break
		}
	}
	if !irregular {
		t.Error("no irregular polygons generated")
	}
}
