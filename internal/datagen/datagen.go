// Package datagen generates the synthetic inputs for the paper's Section
// 4.2 experiments. The authors mined two real geographic datasets whose
// raw data is unavailable; what the mining algorithms actually consume is
// the transaction table, so the generator reproduces the published table
// statistics instead:
//
//   - Dataset 1 (Figures 4 and 5): one non-spatial attribute and six
//     geographic object types yielding 13 spatial predicates, 9 pairs of
//     predicates with the same feature type, and 4 dependency pairs Φ.
//   - Dataset 2 (Figures 6 and 7): 10 spatial predicates, 5 same-feature
//     pairs, no dependencies.
//
// Rows are drawn from a small set of latent "district profiles" (dense
// urban, suburban, rural) so that predicate co-occurrence is strong enough
// to produce the deep frequent itemsets the paper reports. Dependencies
// are enforced generatively: whenever the first predicate of a Φ pair is
// sampled, the second is added too, mimicking well-known geographic
// dependencies like "illumination points are adjacent to streets".
//
// The package also provides a geometric scene generator (see scene.go)
// that produces actual polygons/lines/points for pipeline-level
// benchmarks of the predicate extraction itself.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Pair is an unordered pair of predicate names (a dependency in Φ).
type Pair struct {
	A, B string
}

// Profile is a latent generator class: a weight (relative frequency of
// rows drawn from this profile) and per-predicate inclusion
// probabilities. Predicates absent from Probs fall back to
// TransactionConfig.BaseProb.
type Profile struct {
	Weight float64
	Probs  map[string]float64
}

// TransactionConfig drives the transaction-table generator.
type TransactionConfig struct {
	// Rows is the number of transactions (reference objects).
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// Predicates is the full item vocabulary (spatial predicates and
	// "attr=value" items).
	Predicates []string
	// BaseProb is the inclusion probability for predicates not mentioned
	// by the selected profile.
	BaseProb float64
	// Profiles are the latent row classes; weights need not sum to 1.
	Profiles []Profile
	// Dependencies are generatively enforced pairs: when A is sampled, B
	// is added with probability DependencyStrength.
	Dependencies []Pair
	// DependencyStrength defaults to 1.0 (always enforce).
	DependencyStrength float64
	// AttributeGroups lists mutually exclusive item groups (e.g.
	// {"crimeRate=high", "crimeRate=low"}): at most one survives per row,
	// keeping attribute semantics sane. The first sampled member wins.
	AttributeGroups [][]string
}

// Generate produces the transaction table.
func Generate(cfg TransactionConfig) (*dataset.Table, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("datagen: Rows must be positive, got %d", cfg.Rows)
	}
	if len(cfg.Predicates) == 0 {
		return nil, fmt.Errorf("datagen: no predicates configured")
	}
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("datagen: no profiles configured")
	}
	depStrength := cfg.DependencyStrength
	if depStrength == 0 {
		depStrength = 1
	}
	totalWeight := 0.0
	for i, p := range cfg.Profiles {
		if p.Weight <= 0 {
			return nil, fmt.Errorf("datagen: profile %d has non-positive weight", i)
		}
		totalWeight += p.Weight
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]dataset.Transaction, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		profile := pickProfile(rng, cfg.Profiles, totalWeight)
		present := make(map[string]bool, len(cfg.Predicates))
		for _, pred := range cfg.Predicates {
			p, ok := profile.Probs[pred]
			if !ok {
				p = cfg.BaseProb
			}
			if rng.Float64() < p {
				present[pred] = true
			}
		}
		// Enforce dependencies to a fixed point: adding B for one pair
		// can trigger another pair whose A is B.
		for changed := true; changed; {
			changed = false
			for _, dep := range cfg.Dependencies {
				if present[dep.A] && !present[dep.B] && rng.Float64() < depStrength {
					present[dep.B] = true
					changed = true
				}
			}
		}
		// Resolve mutually exclusive attribute groups.
		for _, group := range cfg.AttributeGroups {
			kept := false
			for _, item := range group {
				if present[item] {
					if kept {
						delete(present, item)
					}
					kept = true
				}
			}
		}
		items := make([]string, 0, len(present))
		for _, pred := range cfg.Predicates { // vocabulary order, deterministic
			if present[pred] {
				items = append(items, pred)
			}
		}
		rows[r] = dataset.Transaction{RefID: fmt.Sprintf("ref%d", r), Items: items}
	}
	return dataset.NewTable(rows), nil
}

// pickProfile samples a profile by weight.
func pickProfile(rng *rand.Rand, profiles []Profile, total float64) *Profile {
	x := rng.Float64() * total
	for i := range profiles {
		x -= profiles[i].Weight
		if x < 0 {
			return &profiles[i]
		}
	}
	return &profiles[len(profiles)-1]
}
