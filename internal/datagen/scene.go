package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// GeometryKind selects the geometry produced for a scene feature type.
type GeometryKind int

// Scene feature geometry kinds.
const (
	// KindPolygon produces rectangles (slums, parks, ...).
	KindPolygon GeometryKind = iota
	// KindPoint produces points (schools, police centers, ...).
	KindPoint
	// KindLine produces polylines (rivers, streets, ...).
	KindLine
)

// PlacementProbs gives, per district, the probability of placing one
// feature instance realising each topological relation (from the
// district's point of view). Relations not applicable to the geometry
// kind are ignored (e.g. Crosses for polygons, Overlaps for points).
type PlacementProbs struct {
	Contains float64 // feature strictly inside the district
	Covers   float64 // feature inside, sharing boundary (polygons only)
	Overlaps float64 // feature straddling the boundary (polygons only)
	Touches  float64 // feature outside or on the rim, sharing boundary
	Crosses  float64 // feature passing through (lines only)
}

// SceneFeatureSpec describes one relevant feature type of a scene.
type SceneFeatureSpec struct {
	Name  string
	Kind  GeometryKind
	Probs PlacementProbs
}

// SceneConfig drives the geometric scene generator: a GridW x GridH
// mosaic of square districts of the given size, populated independently
// per district from the feature specs.
type SceneConfig struct {
	GridW, GridH int
	DistrictSize float64
	Seed         int64
	Features     []SceneFeatureSpec
	// CrimeAttribute, when true, attaches a crimeRate=high/low attribute
	// correlated with the number of slum-ish polygon features placed.
	CrimeAttribute bool
	// IrregularPolygons replaces the rectangular "contains" placements
	// with random convex polygons (hulls of jittered point clouds),
	// exercising the general-polygon DE-9IM paths. Boundary-exact
	// placements (covers/touches/overlaps) stay rectangular so the
	// realised relations remain exact.
	IrregularPolygons bool
}

// DefaultScene returns a medium scene configuration exercising polygons,
// points, and lines — the pipeline benchmark workload.
func DefaultScene(gridW, gridH int, seed int64) SceneConfig {
	return SceneConfig{
		GridW: gridW, GridH: gridH, DistrictSize: 10, Seed: seed,
		CrimeAttribute: true,
		Features: []SceneFeatureSpec{
			{Name: "slum", Kind: KindPolygon, Probs: PlacementProbs{Contains: 0.5, Covers: 0.2, Overlaps: 0.3, Touches: 0.25}},
			{Name: "school", Kind: KindPoint, Probs: PlacementProbs{Contains: 0.7, Touches: 0.3}},
			{Name: "policeCenter", Kind: KindPoint, Probs: PlacementProbs{Contains: 0.3}},
			{Name: "river", Kind: KindLine, Probs: PlacementProbs{Contains: 0.15, Crosses: 0.25, Touches: 0.1}},
			{Name: "street", Kind: KindLine, Probs: PlacementProbs{Contains: 0.6, Crosses: 0.5}},
		},
	}
}

// GenerateScene builds the geometric dataset. Each district is a square
// cell of a touching mosaic (like the Porto Alegre district map); feature
// instances are placed with jittered offsets chosen to realise the
// sampled relation exactly. A feature placed on a shared edge or
// straddling it legitimately relates to both neighbouring districts, as
// in real city data.
func GenerateScene(cfg SceneConfig) (*dataset.Dataset, error) {
	if cfg.GridW <= 0 || cfg.GridH <= 0 {
		return nil, fmt.Errorf("datagen: grid must be positive, got %dx%d", cfg.GridW, cfg.GridH)
	}
	if cfg.DistrictSize <= 0 {
		return nil, fmt.Errorf("datagen: district size must be positive, got %v", cfg.DistrictSize)
	}
	if len(cfg.Features) == 0 {
		return nil, fmt.Errorf("datagen: no feature specs")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := cfg.DistrictSize

	districts := dataset.NewLayer("district")
	layers := make([]*dataset.Layer, len(cfg.Features))
	for i, spec := range cfg.Features {
		layers[i] = dataset.NewLayer(spec.Name)
	}

	for gy := 0; gy < cfg.GridH; gy++ {
		for gx := 0; gx < cfg.GridW; gx++ {
			ox, oy := float64(gx)*s, float64(gy)*s
			d := dataset.Feature{
				ID:       fmt.Sprintf("district_%d_%d", gx, gy),
				Geometry: geom.Rect(ox, oy, ox+s, oy+s),
			}
			slumCount := 0
			for i, spec := range cfg.Features {
				placed := placeFeatures(rng, spec, ox, oy, s, layers[i], cfg.IrregularPolygons)
				if spec.Kind == KindPolygon {
					slumCount += placed
				}
			}
			if cfg.CrimeAttribute {
				rate := "low"
				if slumCount >= 2 || (slumCount == 1 && rng.Float64() < 0.5) {
					rate = "high"
				}
				d.Attrs = map[string]dataset.Value{"crimeRate": rate}
			}
			districts.Add(d)
		}
	}

	ds := &dataset.Dataset{Reference: districts, Relevant: layers}
	if cfg.CrimeAttribute {
		ds.NonSpatialAttrs = []string{"crimeRate"}
	}
	return ds, nil
}

// placeFeatures samples and places the instances of one feature type for
// one district cell at origin (ox, oy) with size s, returning how many
// were placed.
func placeFeatures(rng *rand.Rand, spec SceneFeatureSpec, ox, oy, s float64, layer *dataset.Layer, irregular bool) int {
	placed := 0
	add := func(g geom.Geometry) {
		layer.AddGeometry(g)
		placed++
	}
	u := rng.Float64 // shorthand

	switch spec.Kind {
	case KindPolygon:
		if u() < spec.Probs.Contains {
			// Strictly inside with jittered position and size.
			w, h := s*(0.1+0.15*u()), s*(0.1+0.15*u())
			x := ox + s*0.1 + u()*(s*0.8-w)
			y := oy + s*0.1 + u()*(s*0.8-h)
			if irregular {
				add(convexBlob(rng, x, y, w, h))
			} else {
				add(geom.Rect(x, y, x+w, y+h))
			}
		}
		if u() < spec.Probs.Covers {
			// Inside, flush against the left edge.
			h := s * (0.15 + 0.15*u())
			y := oy + s*0.1 + u()*(s*0.8-h)
			add(geom.Rect(ox, y, ox+s*0.2, y+h))
		}
		if u() < spec.Probs.Overlaps {
			// Straddles the right edge (also overlapping or inside the
			// right-hand neighbour, as real slums straddle districts).
			h := s * (0.15 + 0.15*u())
			y := oy + s*0.1 + u()*(s*0.8-h)
			add(geom.Rect(ox+s*0.85, y, ox+s*1.15, y+h))
		}
		if u() < spec.Probs.Touches {
			// Outside, sharing the top edge.
			w := s * (0.15 + 0.15*u())
			x := ox + s*0.1 + u()*(s*0.8-w)
			add(geom.Rect(x, oy+s, x+w, oy+s*1.2))
		}
	case KindPoint:
		if u() < spec.Probs.Contains {
			add(geom.Pt(ox+s*0.1+u()*s*0.8, oy+s*0.1+u()*s*0.8))
		}
		if u() < spec.Probs.Touches {
			// On the bottom edge.
			add(geom.Pt(ox+s*0.1+u()*s*0.8, oy))
		}
	case KindLine:
		if u() < spec.Probs.Contains {
			// A short street strictly inside.
			y := oy + s*0.1 + u()*s*0.8
			add(geom.Line(geom.Pt(ox+s*0.15, y), geom.Pt(ox+s*0.85, y)))
		}
		if u() < spec.Probs.Crosses {
			// A river running straight through and beyond both sides.
			y := oy + s*0.1 + u()*s*0.8
			add(geom.Line(geom.Pt(ox-s*0.3, y), geom.Pt(ox+s*1.3, y)))
		}
		if u() < spec.Probs.Touches {
			// Along the left edge.
			add(geom.Line(geom.Pt(ox, oy+s*0.1), geom.Pt(ox, oy+s*0.9)))
		}
	}
	return placed
}

// convexBlob returns a random convex polygon inside the box
// [x, x+w] x [y, y+h]: the convex hull of a small jittered point cloud.
// Hulls of interior points stay strictly interior, so a blob placed in a
// "contains" slot realises exactly the contains relation.
func convexBlob(rng *rand.Rand, x, y, w, h float64) geom.Geometry {
	n := 6 + rng.Intn(7)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(x+rng.Float64()*w, y+rng.Float64()*h)
	}
	hull := geom.ConvexHull(pts)
	if hull.NumSegments() < 3 {
		// Degenerate cloud (collinear): fall back to the full rectangle.
		return geom.Rect(x, y, x+w, y+h)
	}
	return geom.Polygon{Shell: hull}
}
