package datagen

import "repro/internal/dataset"

// Dataset1Predicates is the 13-spatial-predicate vocabulary of the first
// Section 4.2 experiment: six geographic object types whose relation
// counts are {street: 3, slum: 3, school: 2, hospital: 2,
// illuminationPoint: 2, factory: 1}, giving C(3,2)+C(3,2)+1+1+1 = 9
// same-feature pairs, plus one non-spatial attribute (crimeRate).
var Dataset1Predicates = []string{
	"crimeRate=high", "crimeRate=low",
	"contains_street", "crosses_street", "touches_street",
	"contains_slum", "touches_slum", "overlaps_slum",
	"contains_school", "touches_school",
	"contains_hospital", "touches_hospital",
	"contains_illuminationPoint", "touches_illuminationPoint",
	"contains_factory",
}

// Dataset1Dependencies is the Φ of the first experiment: four well-known
// geographic dependencies, in the spirit of the paper's "illumination
// points are adjacent to streets, and all streets are related to at least
// one district".
var Dataset1Dependencies = []Pair{
	{A: "contains_street", B: "contains_illuminationPoint"},
	{A: "crosses_street", B: "contains_illuminationPoint"},
	{A: "touches_street", B: "touches_illuminationPoint"},
	{A: "contains_slum", B: "contains_street"},
}

// PaperDataset1 generates the first experiment's transaction table
// (Figures 4 and 5): rows reference objects, 13 spatial predicates over 6
// feature types, 9 same-feature pairs, 4 generatively enforced
// dependencies.
func PaperDataset1(seed int64, rows int) (*dataset.Table, error) {
	cfg := TransactionConfig{
		Rows:       rows,
		Seed:       seed,
		Predicates: Dataset1Predicates,
		BaseProb:   0.02,
		Profiles: []Profile{
			{ // dense urban: slums, schools and hospitals co-occur deeply;
				// streets/illumination stay moderate so the Φ-pair
				// supersets form the paper's ~28% share, not half the
				// lattice.
				Weight: 0.30,
				Probs: map[string]float64{
					"crimeRate=high": 0.85, "crimeRate=low": 0.10,
					"contains_street": 0.22, "crosses_street": 0.12, "touches_street": 0.08,
					"contains_slum": 0.96, "touches_slum": 0.88, "overlaps_slum": 0.80,
					"contains_school": 0.92, "touches_school": 0.84,
					"contains_hospital": 0.84, "touches_hospital": 0.70,
					"contains_illuminationPoint": 0.22, "touches_illuminationPoint": 0.12,
					"contains_factory": 0.40,
				},
			},
			{ // suburban: moderate density, low crime
				Weight: 0.45,
				Probs: map[string]float64{
					"crimeRate=high": 0.15, "crimeRate=low": 0.80,
					"contains_street": 0.22, "crosses_street": 0.10, "touches_street": 0.07,
					"contains_slum": 0.20, "touches_slum": 0.15, "overlaps_slum": 0.08,
					"contains_school": 0.60, "touches_school": 0.30,
					"contains_hospital": 0.25, "touches_hospital": 0.15,
					"contains_illuminationPoint": 0.25, "touches_illuminationPoint": 0.12,
					"contains_factory": 0.15,
				},
			},
			{ // rural: sparse
				Weight: 0.25,
				Probs: map[string]float64{
					"crimeRate=high": 0.05, "crimeRate=low": 0.70,
					"contains_street": 0.14, "crosses_street": 0.07, "touches_street": 0.05,
					"contains_slum": 0.04, "touches_slum": 0.03, "overlaps_slum": 0.02,
					"contains_school": 0.20, "touches_school": 0.08,
					"contains_hospital": 0.05, "touches_hospital": 0.03,
					"contains_illuminationPoint": 0.12, "touches_illuminationPoint": 0.05,
					"contains_factory": 0.06,
				},
			},
		},
		Dependencies: Dataset1Dependencies,
		AttributeGroups: [][]string{
			{"crimeRate=high", "crimeRate=low"},
		},
	}
	return Generate(cfg)
}

// Dataset2Predicates is the 10-spatial-predicate vocabulary of the second
// Section 4.2 experiment: five feature types with two qualitative
// relations each, giving exactly 5 same-feature pairs and no
// dependencies.
var Dataset2Predicates = []string{
	"contains_market", "touches_market",
	"contains_park", "touches_park",
	"contains_river", "crosses_river",
	"contains_church", "touches_church",
	"contains_factory", "touches_factory",
}

// PaperDataset2 generates the second experiment's transaction table
// (Figures 6 and 7): 10 spatial predicates, 5 same-feature pairs, no Φ.
// The profile probabilities are tiered so that minimum supports swept
// over the paper's 5-17% range peel predicates off the frequent border,
// reproducing the largest-itemset shapes of the gain checks (m = 8 at 5%
// shrinking to m = 7 at 17%).
func PaperDataset2(seed int64, rows int) (*dataset.Table, error) {
	cfg := TransactionConfig{
		Rows:       rows,
		Seed:       seed,
		Predicates: Dataset2Predicates,
		BaseProb:   0.01,
		Profiles: []Profile{
			{ // commercial core: both relations of market, park, and
				// river co-occur almost always, so those three
				// same-feature pairs stay frequent (and deeply embedded)
				// across the whole 5-17% sweep.
				Weight: 0.34,
				Probs: map[string]float64{
					"contains_market": 0.97, "touches_market": 0.95,
					"contains_park": 0.96, "touches_park": 0.94,
					"contains_river": 0.95, "crosses_river": 0.93,
					"contains_church": 0.90, "touches_church": 0.25,
					"contains_factory": 0.30, "touches_factory": 0.22,
				},
			},
			{ // residential: some parks and churches
				Weight: 0.33,
				Probs: map[string]float64{
					"contains_market": 0.22, "touches_market": 0.10,
					"contains_park": 0.40, "touches_park": 0.16,
					"contains_river": 0.12, "crosses_river": 0.06,
					"contains_church": 0.55, "touches_church": 0.30,
					"contains_factory": 0.08, "touches_factory": 0.04,
				},
			},
			{ // industrial: factories dominate
				Weight: 0.33,
				Probs: map[string]float64{
					"contains_market": 0.06, "touches_market": 0.04,
					"contains_park": 0.08, "touches_park": 0.05,
					"contains_river": 0.18, "crosses_river": 0.12,
					"contains_church": 0.06, "touches_church": 0.03,
					"contains_factory": 0.60, "touches_factory": 0.55,
				},
			},
		},
		// Generative correlation only (NOT a Φ input — the paper's second
		// experiment declares no dependencies): a district touched by a
		// factory or church usually also contains one, so the weak
		// feature types' relations enter deep itemsets as pairs, which
		// keeps the same-feature filter effective across the whole
		// support sweep.
		Dependencies: []Pair{
			{A: "touches_factory", B: "contains_factory"},
			{A: "touches_church", B: "contains_church"},
		},
		DependencyStrength: 0.9,
	}
	return Generate(cfg)
}

// DefaultRows is the row count the experiment harness uses; large enough
// for stable support estimates, small enough for fast benches.
const DefaultRows = 1000

// DefaultSeed pins the harness datasets.
const DefaultSeed = 2007 // the paper's publication year
