package qsrmine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	qsrmine "repro"
	"repro/internal/datagen"
	"repro/internal/qsr"
)

// The incremental-pipeline property: replaying any sequence of random
// scene mutations through an evolving ExtractState and mining the
// patched tables gives exactly the result of rebuilding and mining the
// mutated scene from scratch. Exercised across extraction families
// (topological; topological+distance; directional, whose predicates
// have no local dirty region and force full refits) and at mining
// parallelism 1 and 4, so the race detector sees both the sequential
// and the sharded paths.

func TestIncrementalPipelineMatchesFromScratchSequential(t *testing.T) {
	runIncrementalProperty(t, 1, 101)
}

func TestIncrementalPipelineMatchesFromScratchParallel(t *testing.T) {
	runIncrementalProperty(t, 4, 202)
}

func runIncrementalProperty(t *testing.T, parallelism int, seed int64) {
	families := map[string]qsrmine.ExtractOptions{
		"topo":      qsrmine.DefaultExtractOptions(),
		"topo+dist": {Topological: true, Distance: true, Thresholds: qsr.DefaultThresholds(8), IncludeFarFrom: true, Index: qsrmine.DefaultExtractOptions().Index},
		"dir":       {Directional: true, Index: qsrmine.DefaultExtractOptions().Index},
	}
	for name, opts := range families {
		opts := opts
		opts.Parallelism = parallelism
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d, err := datagen.GenerateScene(datagen.DefaultScene(6, 5, seed))
			if err != nil {
				t.Fatal(err)
			}
			cfg := qsrmine.Config{
				Algorithm:   qsrmine.EclatKCPlus,
				MinSupport:  0.25,
				Extraction:  opts,
				Parallelism: parallelism,
			}
			st, err := qsrmine.NewExtractState(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for step := 0; step < 5; step++ {
				ops := randomOps(rng, d, 1+rng.Intn(4), fmt.Sprintf("s%d", step))
				nd, cs, err := d.ApplyOps(ops)
				if err != nil {
					t.Fatalf("step %d: ApplyOps: %v", step, err)
				}
				if _, err := st.Apply(ctx, nd, cs); err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				got, err := qsrmine.RunTableContext(ctx, st.Table(), cfg)
				if err != nil {
					t.Fatalf("step %d: mining patched table: %v", step, err)
				}
				want, err := qsrmine.RunContext(ctx, nd, cfg)
				if err != nil {
					t.Fatalf("step %d: from-scratch oracle: %v", step, err)
				}
				assertOutcomesEqual(t, got, want, step)
				d = nd
			}
		})
	}
}

// assertOutcomesEqual compares two pipeline outcomes on substance:
// table rows, then frequent itemsets by formatted item names and
// support (names, not raw IDs, so dictionary interning order cannot
// mask or fake a diff).
func assertOutcomesEqual(t *testing.T, got, want *qsrmine.Outcome, step int) {
	t.Helper()
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("step %d: %d rows vs %d", step, got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Transactions {
		g, w := got.Table.Transactions[i], want.Table.Transactions[i]
		if g.RefID != w.RefID || fmt.Sprint(g.Items) != fmt.Sprint(w.Items) {
			t.Fatalf("step %d: row %d diverged:\ndelta %s %v\nfresh %s %v", step, i, g.RefID, g.Items, w.RefID, w.Items)
		}
	}
	gr, wr := got.Result, want.Result
	if gr.NumTransactions != wr.NumTransactions || gr.MinSupportCount != wr.MinSupportCount {
		t.Fatalf("step %d: headline mismatch: %d/%d vs %d/%d",
			step, gr.NumTransactions, gr.MinSupportCount, wr.NumTransactions, wr.MinSupportCount)
	}
	if len(gr.Frequent) != len(wr.Frequent) {
		t.Fatalf("step %d: %d frequent itemsets vs %d", step, len(gr.Frequent), len(wr.Frequent))
	}
	for i := range wr.Frequent {
		g, w := gr.Frequent[i], wr.Frequent[i]
		gn, wn := g.Items.Format(got.DB.Dict), w.Items.Format(want.DB.Dict)
		if gn != wn || g.Support != w.Support {
			t.Fatalf("step %d: itemset %d: %s(%d) vs %s(%d)", step, i, gn, g.Support, wn, w.Support)
		}
	}
}

// randomOps builds a valid mutation batch over the scene using every
// op kind and every geometry family (polygons, lines, points). tag
// keeps insert IDs unique across batches.
func randomOps(rng *rand.Rand, d *qsrmine.Dataset, nOps int, tag string) []qsrmine.Op {
	var ops []qsrmine.Op
	touched := map[string]bool{}
	inserted := 0
	for len(ops) < nOps {
		var layer *qsrmine.Layer
		if rng.Float64() < 0.2 {
			layer = d.Reference
		} else {
			layer = d.Relevant[rng.Intn(len(d.Relevant))]
		}
		if layer.Len() == 0 {
			continue
		}
		f := layer.Features[rng.Intn(layer.Len())]
		key := layer.Type + "/" + f.ID
		switch rng.Intn(4) {
		case 3: // attribute update on a reference district: a numeric
			// value shifts (or first creates) the crimeRate column's
			// fitted discretizer cuts, so surviving rows re-render
			rf := d.Reference.Features[rng.Intn(d.Reference.Len())]
			rkey := d.Reference.Type + "/" + rf.ID
			if touched[rkey] {
				continue
			}
			ops = append(ops, qsrmine.Op{
				Action: qsrmine.OpUpdate, Layer: d.Reference.Type, ID: rf.ID,
				Attrs: map[string]qsrmine.Value{"crimeRate": rng.Float64() * 100},
			})
		case 0: // geometry update, possibly switching family
			if touched[key] {
				continue
			}
			touched[key] = true
			env := f.Geometry.Envelope()
			ops = append(ops, qsrmine.Op{
				Action: qsrmine.OpUpdate, Layer: layer.Type, ID: f.ID,
				WKT: randomWKT(rng, env.MinX+(rng.Float64()-0.5)*3, env.MinY+(rng.Float64()-0.5)*3),
			})
		case 1: // insert
			id := fmt.Sprintf("ins_%s_%s_%d", tag, layer.Type, inserted)
			inserted++
			ops = append(ops, qsrmine.Op{
				Action: qsrmine.OpInsert, Layer: layer.Type, ID: id,
				WKT: randomWKT(rng, rng.Float64()*40, rng.Float64()*30),
			})
		default: // delete, keeping the reference layer populated
			if touched[key] || (layer == d.Reference && layer.Len() < 4) {
				continue
			}
			touched[key] = true
			ops = append(ops, qsrmine.Op{Action: qsrmine.OpDelete, Layer: layer.Type, ID: f.ID})
		}
	}
	return ops
}

// randomWKT emits a polygon, line, or point anchored at (x, y).
func randomWKT(rng *rand.Rand, x, y float64) string {
	switch rng.Intn(3) {
	case 0:
		w, h := 0.5+rng.Float64()*3, 0.5+rng.Float64()*3
		return fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))",
			x, y, x+w, y, x+w, y+h, x, y+h, x, y)
	case 1:
		return fmt.Sprintf("LINESTRING (%g %g, %g %g, %g %g)",
			x, y, x+1+rng.Float64()*3, y+rng.Float64()*2, x+2+rng.Float64()*4, y+1+rng.Float64()*2)
	default:
		return fmt.Sprintf("POINT (%g %g)", x, y)
	}
}
