// Package api defines the wire contract of the qsrmined /v1 HTTP API:
// the request/response document types, the job lifecycle states, and the
// machine-readable error envelope. Both the server (internal/server) and
// the typed client (repro/client) compile against these definitions, so
// the two surfaces cannot drift — a field added here is immediately
// visible to both, and the multi-node proxy forwards documents it never
// has to re-encode.
//
// All endpoints live under the /v1 prefix; the unprefixed legacy paths
// answer identically but carry a Deprecation header. Errors are always
// the JSON envelope
//
//	{"error":{"code":"not_found","message":"...","requestId":"..."}}
//
// with Code drawn from the ErrorCode constants below.
package api

import (
	"time"

	"repro/internal/colocation"
	"repro/internal/core"
	"repro/internal/dataset"
)

// DatasetKind discriminates the two upload formats.
type DatasetKind string

// Dataset kinds.
const (
	// KindScene is a WKT-JSON geographic scene (mined via extraction).
	KindScene DatasetKind = "scene"
	// KindTable is a transaction-table CSV (mined directly).
	KindTable DatasetKind = "table"
)

// DatasetInfo is the upload / metadata document (POST /v1/datasets/*,
// GET /v1/datasets/{digest}).
type DatasetInfo struct {
	// Digest is the lowercase hex SHA-256 of the upload body — the
	// content address every later request names the dataset by, and the
	// key multi-node routing consistent-hashes on.
	Digest string      `json:"digest"`
	Kind   DatasetKind `json:"kind"`
	Rows   int         `json:"rows"`
	Bytes  int64       `json:"bytes"`
}

// PatchRequest is the body of PATCH /v1/datasets/{digest}: a batch of
// feature mutations applied atomically to a stored scene, producing a
// new content-addressed successor dataset. The parent is never changed
// — datasets are immutable values; a patch is a derivation.
type PatchRequest struct {
	// Ops is the mutation batch (insert/update/delete by layer + ID).
	Ops []dataset.Op `json:"ops"`
}

// PatchResponse describes the successor dataset a PATCH produced, with
// its lineage back to the parent digest. Mining the successor digest
// can then reuse the parent's extraction state and cached result
// through the delta pipeline.
type PatchResponse struct {
	// Parent is the digest the mutation batch was applied to.
	Parent string `json:"parent"`
	// Dataset describes the stored successor (its digest is the content
	// address of the successor's serialised form).
	Dataset DatasetInfo `json:"dataset"`
	// Changed counts mutated features across all layers.
	Changed int `json:"changed"`
	// ByLayer is the per-layer feature diff.
	ByLayer map[string]*dataset.LayerDiff `json:"byLayer,omitempty"`
}

// DatasetList enumerates the stored datasets (GET /v1/datasets),
// ordered by digest.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// DeleteResponse acknowledges DELETE /v1/datasets/{digest}: the dataset
// is gone from the store and every cached mining result computed from
// it has been invalidated.
type DeleteResponse struct {
	Digest  string `json:"digest"`
	Deleted bool   `json:"deleted"`
	// ResultsInvalidated counts result-cache entries dropped because
	// they were keyed to this digest.
	ResultsInvalidated int `json:"resultsInvalidated"`
}

// MineRequest is the body of POST /v1/mine and POST /v1/jobs: which
// stored dataset to mine and the full pipeline configuration. Config is
// core.Config's JSON form — algorithm, minSupport, dependencies,
// counting, parallelism, postFilter, rules, and (for scenes) the
// extraction options.
type MineRequest struct {
	// Dataset is the digest returned by a dataset upload.
	Dataset string `json:"dataset"`
	// Config is the pipeline configuration.
	Config core.Config `json:"config"`
	// TimeoutMillis bounds this request's wall time; 0 uses the server
	// default.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Colocate, when set, makes this a co-location request: the scene's
	// feature types are mined for prevalent co-located sets under
	// Colocate's distance/minPI instead of running the transaction
	// pipeline, and Config is ignored. POST /v1/colocate fills this
	// internally; it also keys the result cache, the single-flight
	// group, and the job journal, which is why the one request type
	// carries both workloads.
	Colocate *colocation.Config `json:"colocate,omitempty"`
}

// ColocateRequest is the body of POST /v1/colocate and POST
// /v1/colocate/jobs: which stored scene to mine and the co-location
// configuration (neighborhood distance, minimum participation index,
// optional size cap, worker fan-out, candidate engine, and top-k
// truncation). The config's "engine" field ("joinless", the default,
// or "clique") picks the candidate-evaluation strategy only — both
// engines return identical results, so the server's result cache
// deliberately ignores it and a clique run can be served from a
// joinless run's cache entry. "topK" > 0 keeps only the k highest-PI
// prevalent patterns (ties broken by smaller size, then name order).
type ColocateRequest struct {
	// Dataset is the digest returned by a scene upload.
	Dataset string `json:"dataset"`
	// Config is the co-location configuration.
	Config colocation.Config `json:"config"`
	// TimeoutMillis bounds this request's wall time; 0 uses the server
	// default.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// MineResponse is the mining result: the frequent itemsets (all sizes),
// optional association rules, and the run's headline numbers.
type MineResponse struct {
	Algorithm         string          `json:"algorithm"`
	Dataset           string          `json:"dataset"`
	Transactions      int             `json:"transactions"`
	MinSupportCount   int             `json:"minSupportCount"`
	PrunedDeps        int             `json:"prunedDependencies"`
	PrunedSameFeature int             `json:"prunedSameFeature"`
	MiningMicros      int64           `json:"miningMicros"`
	Frequent          []ItemsetResult `json:"frequent"`
	Rules             []RuleResult    `json:"rules,omitempty"`
	// Cached reports whether this response was served from the result
	// cache without re-mining. Coalesced responses (followers of a
	// single-flight leader) are not marked cached: they shared the one
	// computation and are byte-identical to the leader's response.
	Cached bool `json:"cached,omitempty"`
	// Colocation carries the co-location result when the request was a
	// co-location mine (Algorithm "colocation"); the transaction fields
	// above are then zero. Persisted results hash the whole response,
	// so this block participates in the digest chain like any other.
	Colocation *ColocationResult `json:"colocation,omitempty"`
}

// ColocationResult is the co-location block of a MineResponse: the
// prevalent feature-type sets with their participation indices, plus
// the neighborhood-materialization counters.
type ColocationResult struct {
	// Distance and MinPI echo the mined configuration.
	Distance float64 `json:"distance"`
	MinPI    float64 `json:"minPI"`
	// Types are the feature types considered (those with instances).
	Types []string `json:"types"`
	// Instances is the total instance count across Types.
	Instances int `json:"instances"`
	// CandidatePairs / RefinedPairs count the R-tree filter stage's
	// candidate neighbor pairs and the pairs surviving exact distance
	// refinement.
	CandidatePairs int64 `json:"candidatePairs"`
	RefinedPairs   int64 `json:"refinedPairs"`
	// Prevalent are the patterns with PI >= MinPI, sorted by size then
	// lexicographically by type names.
	Prevalent []ColocationPattern `json:"prevalent"`
}

// ColocationPattern is one prevalent co-location.
type ColocationPattern struct {
	Types []string `json:"types"`
	// ParticipationIndex is min over the pattern's types of the
	// fraction of that type's instances in at least one row instance.
	ParticipationIndex float64 `json:"participationIndex"`
	// RowInstances counts the pattern's supporting neighbor cliques.
	RowInstances int `json:"rowInstances"`
}

// ItemsetResult is one frequent itemset with its absolute support.
type ItemsetResult struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

// RuleResult is one association rule.
type RuleResult struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
}

// JobState is the lifecycle state of an async mining job.
type JobState string

// Job states. Queued and running jobs are live; the other states are
// terminal.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the wire form of a job (GET /v1/jobs/{id}). IDs carry a
// per-process random prefix, so they stay unique across the nodes of a
// cluster and a front node can route polls by ID alone.
type JobStatus struct {
	ID         string        `json:"id"`
	State      JobState      `json:"state"`
	Dataset    string        `json:"dataset"`
	CreatedAt  time.Time     `json:"createdAt"`
	StartedAt  *time.Time    `json:"startedAt,omitempty"`
	FinishedAt *time.Time    `json:"finishedAt,omitempty"`
	Error      string        `json:"error,omitempty"`
	Result     *MineResponse `json:"result,omitempty"`
	// Lost marks a failed job that was in flight (or queued beyond
	// recovery capacity) when the server crashed: the write-ahead journal
	// recorded its start but no completion, so after a restart it is
	// reported failed with this flag rather than silently vanishing.
	Lost bool `json:"lost,omitempty"`
}

// Health is the liveness document (GET /v1/healthz). A draining node
// answers Status "draining" with HTTP 503 so load balancers stop
// routing to it.
type Health struct {
	Status       string `json:"status"`
	Version      string `json:"version"`
	UptimeMillis int64  `json:"uptimeMillis"`
	// Role distinguishes a mining node ("node", the default when empty)
	// from a multi-node front router ("front").
	Role string `json:"role,omitempty"`
	// Peers is the front node's configured peer count (front role only).
	Peers int `json:"peers,omitempty"`
	// Persist is "disk" on a node started with -data-dir; empty (memory
	// only) otherwise.
	Persist string `json:"persist,omitempty"`
}

// StoreStats is the dataset store's /v1/metrics snapshot.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Evictions int64 `json:"evictions"`
}

// CacheStats is the result cache's /v1/metrics snapshot.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// JobStats is the job manager's /v1/metrics snapshot.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

// PersistStats is the persistence tier's /v1/metrics snapshot (nodes
// started with -data-dir only).
type PersistStats struct {
	// Enabled is always true when the block is present.
	Enabled bool `json:"enabled"`
	// Datasets / Results count the artifact files currently on disk.
	Datasets int `json:"datasets"`
	Results  int `json:"results"`
	// WALRecords counts journal records appended (and fsynced) by this
	// process; WALTruncated counts torn journal tails dropped at replay.
	WALRecords   int64 `json:"walRecords"`
	WALTruncated int64 `json:"walTruncated,omitempty"`
	// DatasetReloads counts datasets lazily re-parsed from disk after a
	// store miss (typically after a restart or an LRU eviction).
	DatasetReloads int64 `json:"datasetReloads"`
	// ResultHits counts persisted results served after digest-chain
	// verification; VerifyFailures counts corrupt or mismatched entries
	// discarded (and recomputed) instead.
	ResultHits     int64 `json:"resultHits"`
	VerifyFailures int64 `json:"verifyFailures"`
	// SaveErrors counts failed persistence writes (service degraded to
	// memory-only for the affected artifact).
	SaveErrors int64 `json:"saveErrors"`
	// JobsRecovered / JobsLost tally the startup journal replay:
	// re-enqueued never-started jobs and in-flight jobs marked failed
	// with lost: true.
	JobsRecovered int64 `json:"jobsRecovered"`
	JobsLost      int64 `json:"jobsLost"`
}

// RingStats is the front node's routing snapshot (front role only).
type RingStats struct {
	// Peers are the configured peer base URLs in ring order of
	// configuration (not ring position).
	Peers []string `json:"peers"`
	// Replicas is the number of peers each dataset digest is routed to.
	Replicas int `json:"replicas"`
	// Forwarded counts successfully proxied requests.
	Forwarded int64 `json:"forwarded"`
	// Failovers counts peer attempts skipped over a connection error or
	// 5xx before a later candidate answered.
	Failovers int64 `json:"failovers"`
	// Errors counts requests for which every candidate peer failed.
	Errors int64 `json:"errors"`
	// TrackedJobs is the size of the job-ID → peer routing table.
	TrackedJobs int `json:"trackedJobs"`
}

// ObsCounters is the client-side view of the obs block in /v1/metrics:
// just the named counters. The server document carries more (stage
// spans, mining passes); clients that need those decode the raw body.
type ObsCounters struct {
	Counters map[string]int64 `json:"counters"`
}

// Metrics is the client-side view of GET /v1/metrics, shared by mining
// nodes and front routers. Fields a role does not populate decode to
// their zero values.
type Metrics struct {
	Obs          ObsCounters   `json:"obs"`
	Store        StoreStats    `json:"store"`
	Cache        CacheStats    `json:"cache"`
	Jobs         JobStats      `json:"jobs"`
	Persist      *PersistStats `json:"persist,omitempty"`
	Ring         *RingStats    `json:"ring,omitempty"`
	UptimeMillis int64         `json:"uptimeMillis"`
}

// ErrorCode is a machine-readable error class. Codes are stable API:
// clients branch on them, messages are for humans.
type ErrorCode string

// Error codes carried by the /v1 error envelope.
const (
	// CodeBadRequest: the request body or parameters do not parse or
	// fail static validation (HTTP 400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: the named dataset, job, or route does not exist
	// (HTTP 404).
	CodeNotFound ErrorCode = "not_found"
	// CodeTooLarge: the request body exceeds the configured cap
	// (HTTP 413).
	CodeTooLarge ErrorCode = "body_too_large"
	// CodeConfigInvalid: the pipeline rejected the configuration at run
	// time — bad minsup/engine combination and the like (HTTP 422).
	CodeConfigInvalid ErrorCode = "config_invalid"
	// CodeQueueFull: the bounded async job queue is at capacity; retry
	// after the Retry-After hint (HTTP 503).
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDraining: the node is shutting down gracefully; retry against
	// another node after the Retry-After hint (HTTP 503).
	CodeDraining ErrorCode = "draining"
	// CodeTimeout: mining exceeded the request deadline (HTTP 504).
	CodeTimeout ErrorCode = "timeout"
	// CodeCancelled: the request's computation was cancelled (HTTP 503).
	CodeCancelled ErrorCode = "cancelled"
	// CodeUpstream: a front node could not reach any replica holding the
	// dataset (HTTP 502).
	CodeUpstream ErrorCode = "upstream_unavailable"
	// CodeInternal: unexpected server-side failure (HTTP 500).
	CodeInternal ErrorCode = "internal"
)

// ErrorBody is the inner error document.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// RequestID echoes the X-Request-ID the failing request carried (or
	// was assigned), for cross-node log correlation.
	RequestID string `json:"requestId,omitempty"`
}

// ErrorEnvelope is the uniform error response body of every /v1 (and
// legacy-alias) endpoint.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
